(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md for the experiment index), plus the
   ablations, on the synthetic assembly-tree corpus. Run with

     dune exec bench/main.exe -- [--scale N] [--seed N] [--section NAME]*
                                 [--jobs N] [--telemetry FILE] [--cache-dir DIR]
                                 [--bechamel] [--list]

   Sections: theorem1 theorem2 fig5 table1 fig6 fig7 fig8 fig9 table2
             ablation-child-order ablation-bestk rounds all (default).
   Sections run in the order given and may repeat: a repeated section
   demonstrates the engine's result cache (the second run is all hits).

   The corpus sweeps of fig6/fig7/fig9/parallel go through the
   tt_engine batch executor: [--jobs N] runs them on N domains,
   [--telemetry FILE] records per-job JSONL events, [--cache-dir DIR]
   persists solver results across invocations. Solver results are
   independent of --jobs; each engine section prints a results digest
   to make that checkable. *)

module T = Tt_core.Tree
module P = Tt_profile.Perf_profile
module Plot = Tt_profile.Ascii_plot
module Table = Tt_profile.Table
module Job = Tt_engine.Job
module Executor = Tt_engine.Executor

let scale = ref 1
let seed = ref 42
let sections : string list ref = ref []
let run_bechamel = ref true
let csv_dir : string option ref = ref None
let jobs = ref 1
let telemetry_path : string option ref = ref None
let cache_dir : string option ref = ref None
let faults_spec : string option ref = ref None
let retries = ref 0
let resume_path : string option ref = ref None
let perf_out = ref "BENCH_CORE.json"
let perf_quick = ref false
let perf_reps = ref 0

let usage = "dune exec bench/main.exe -- [options]"

let spec =
  [ ("--scale", Arg.Set_int scale, "N corpus scale factor (default 1)");
    ("--seed", Arg.Set_int seed, "N corpus seed (default 42)");
    ( "--section",
      Arg.String (fun s -> sections := s :: !sections),
      "NAME run only this section (repeatable, in order)" );
    ( "--jobs",
      Arg.Set_int jobs,
      "N engine domains for the corpus sweeps (default 1; 0 = auto)" );
    ( "--telemetry",
      Arg.String (fun f -> telemetry_path := Some f),
      "FILE record engine JSONL telemetry to FILE" );
    ( "--cache-dir",
      Arg.String (fun d -> cache_dir := Some d),
      "DIR persist engine results to DIR (shared across runs)" );
    ( "--faults",
      Arg.String (fun s -> faults_spec := Some s),
      "SPEC inject deterministic faults into the engine sweeps, e.g. \
       crash=0.3,seed=7 (digests must still match the fault-free run)" );
    ( "--retries",
      Arg.Set_int retries,
      "N retry crashed/fault-injected jobs up to N times (default 0)" );
    ( "--resume",
      Arg.String (fun f -> resume_path := Some f),
      "FILE journal engine results to FILE and skip jobs it already \
       records (crash-resumable benches; keyed by --scale/--seed)" );
    ( "--perf",
      Arg.Unit (fun () -> sections := "perf" :: !sections),
      " run the core-kernel perf section (writes BENCH_CORE.json)" );
    ( "--perf-out",
      Arg.Set_string perf_out,
      "FILE output path of the perf section (default BENCH_CORE.json)" );
    ("--perf-quick", Arg.Set perf_quick, " perf section: CI-smoke sizes instead of paper-scale");
    ( "--perf-reps",
      Arg.Set_int perf_reps,
      "N perf section: timed repetitions per kernel (default 5 full / 3 quick)" );
    ("--bechamel", Arg.Set run_bechamel, " run the Bechamel micro-benchmarks (default)");
    ("--no-bechamel", Arg.Clear run_bechamel, " skip the Bechamel micro-benchmarks");
    ( "--csv",
      Arg.String (fun d -> csv_dir := Some d),
      "DIR also write every figure's curves as CSV files into DIR" );
    ( "--list",
      Arg.Unit
        (fun () ->
          print_endline
            "theorem1 theorem2 fig5 table1 fig6 fig7 fig8 fig9 table2 \
             ablation-child-order ablation-bestk ablation-amalgamation minio-gap parallel sched rounds serve cluster nemesis perf";
          exit 0),
      " list sections" )
  ]

(* ----------------------------------------------------------------- engine *)

let telemetry_sink = lazy (Option.map Tt_engine.Telemetry.to_file !telemetry_path)

let faults =
  lazy
    (match !faults_spec with
    | None -> None
    | Some spec -> (
        match Tt_engine.Fault.of_string spec with
        | Ok f -> Some f
        | Error e ->
            Printf.eprintf "--faults %s: %s\n" spec e;
            exit 2))

(* The journal is keyed by the corpus parameters: a journal written at
   one --scale/--seed must not satisfy jobs from another. *)
let journal_state =
  lazy
    (match !resume_path with
    | None -> None
    | Some path -> (
        let corpus =
          Digest.to_hex
            (Digest.string (Printf.sprintf "bench:scale=%d:seed=%d" !scale !seed))
        in
        match Tt_engine.Journal.load_or_create path ~corpus with
        | Ok (j, completed) -> Some (j, completed)
        | Error e ->
            Printf.eprintf "--resume %s: %s\n" path e;
            exit 2))

let engine =
  lazy
    (let domains = if !jobs = 0 then Executor.default_domains () else !jobs in
     let faults = Lazy.force faults in
     let retry =
       if !retries = 0 then Tt_engine.Retry.none
       else Tt_engine.Retry.create ~retries:!retries ()
     in
     let journal = Option.map fst (Lazy.force journal_state) in
     let completed = Option.map snd (Lazy.force journal_state) in
     Executor.create ~domains
       ~cache:(Tt_engine.Cache.create ?persist:!cache_dir ?faults ())
       ?telemetry:(Lazy.force telemetry_sink) ?faults ~retry ?journal
       ?completed ())

(* Run a batch and print the one-line execution summary every engine
   section shares. *)
let run_engine_batch jobs =
  let exec = Lazy.force engine in
  let reports, summary = Executor.run_batch exec jobs in
  Printf.printf
    "[engine] %d jobs on %d domain(s) in %.2fs (utilization %.0f%%), cache: %d hits / %d misses%s\n"
    summary.Executor.jobs (Executor.domains exec) summary.Executor.wall
    (100. *. Executor.utilization summary)
    summary.Executor.cache_hits summary.Executor.cache_misses
    ((if summary.Executor.retries > 0 then
        Printf.sprintf ", %d retries" summary.Executor.retries
      else "")
    ^ (if summary.Executor.resumed > 0 then
         Printf.sprintf ", %d resumed" summary.Executor.resumed
       else "")
    ^
    if summary.Executor.errors > 0 then
      Printf.sprintf ", %d ERRORS" summary.Executor.errors
    else "");
  (reports, summary)

(* Digest of the solver results only (no timings), so `--jobs 1` and
   `--jobs N` output — and fault-free vs fault-injected-with-retries
   runs — can be checked for equality. *)
let results_digest (reports : Executor.report array) =
  String.sub (Executor.results_digest reports) 0 16

let print_digest reports =
  Printf.printf "results digest: %s (identical for any --jobs value)\n"
    (results_digest reports)

let maybe_csv name curves =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      output_string oc (P.to_csv curves);
      close_out oc;
      Printf.printf "[csv] wrote %s\n" path

let header name descr =
  Printf.printf "\n==================================================================\n";
  Printf.printf "== %s — %s\n" name descr;
  Printf.printf "==================================================================\n%!"

(* ----------------------------------------------------------------- corpus *)

let corpus =
  lazy
    (let t0 = Sys.time () in
     let c = Tt_workloads.Dataset.corpus ~scale:!scale ~seed:!seed () in
     Printf.printf "[corpus] %d assembly trees (scale %d, seed %d) built in %.1fs\n%!"
       (List.length c) !scale !seed (Sys.time () -. t0);
     c)

(* opt/po memory for every instance, computed once *)
let memory_results =
  lazy
    (List.map
       (fun (i : Tt_workloads.Dataset.instance) ->
         let po = Tt_core.Postorder_opt.best_memory i.tree in
         let opt = Tt_core.Liu_exact.min_memory i.tree in
         (i, po, opt))
       (Lazy.force corpus))

(* ------------------------------------------------------------- Theorem 1 *)

let theorem1 () =
  header "Theorem 1 (Fig. 3)" "best postorder is arbitrarily worse than optimal";
  let b = 3 and m = 300 and eps = 1 in
  let rows =
    List.map
      (fun levels ->
        let tree = Tt_core.Instances.harpoon_nested ~branches:b ~levels ~m ~eps in
        let po = Tt_core.Postorder_opt.best_memory tree in
        let opt = Tt_core.Liu_exact.min_memory tree in
        let predicted_po = m + eps + (levels * (b - 1) * (m / b)) in
        [ string_of_int levels;
          string_of_int (T.size tree);
          string_of_int po;
          string_of_int predicted_po;
          string_of_int opt;
          Printf.sprintf "%.3f" (float_of_int po /. float_of_int opt)
        ])
      [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  print_string
    (Table.render
       ~header:[ "L"; "nodes"; "PostOrder"; "paper formula"; "optimal"; "ratio" ]
       rows);
  Printf.printf
    "shape check: PostOrder grows linearly in L while the optimum stays ~%d;\n\
     the ratio is unbounded, as Theorem 1 states (paper formula: M+eps+L(b-1)M/b).\n"
    (m + (2 * b * eps))

(* ------------------------------------------------------------- Theorem 2 *)

let theorem2 () =
  header "Theorem 2 (Fig. 4)" "MinIO is NP-complete: the 2-Partition gadget";
  let demo name a expect_part =
    let tree, memory, bound = Tt_core.Instances.two_partition_gadget a in
    let exact = Tt_core.Brute_force.min_io tree ~memory in
    let _, order = Tt_core.Minmem.run tree in
    let ff = Tt_core.Minio.io_volume tree ~memory ~order Tt_core.Minio.First_fit in
    Printf.printf
      "%s: a = [%s]  M = %d, I/O bound S/2 = %d -> exact min I/O = %s, First Fit = %s\n"
      name
      (String.concat "; " (Array.to_list (Array.map string_of_int a)))
      memory bound
      (match exact with Some io -> string_of_int io | None -> "infeasible")
      (match ff with Some io -> string_of_int io | None -> "infeasible");
    (match (exact, expect_part) with
    | Some io, true when io = bound -> print_endline "  => partition exists: bound met"
    | Some io, false when io > bound ->
        print_endline "  => no partition: bound unreachable, exactly as the reduction predicts"
    | _ -> print_endline "  => UNEXPECTED (see tests)")
  in
  demo "yes-instance" [| 2; 1; 1 |] true;
  demo "yes-instance" [| 4; 1; 3 |] true;
  demo "no-instance " [| 10; 3; 3 |] false;
  demo "no-instance " [| 12; 3; 3 |] false

(* ------------------------------------------------------- Fig. 5 / Table I *)

let fig5_table1 () =
  header "Figure 5 + Table I" "memory of the best postorder vs the optimal traversal";
  let results = Lazy.force memory_results in
  let ratios =
    List.map (fun (_, po, opt) -> float_of_int po /. float_of_int opt) results
  in
  let non_optimal = List.filter (fun r -> r > 1.0 +. 1e-12) ratios in
  let n = List.length ratios and k = List.length non_optimal in
  let stats = Array.of_list ratios in
  let mx, _ = (Tt_util.Statistics.min_max stats |> snd, ()) in
  print_string
    (Table.render_kv
       [ ("Non optimal PostOrder traversals", Printf.sprintf "%.1f%%  (paper: 4.2%%)"
            (100. *. float_of_int k /. float_of_int n));
         ("Max. PostOrder to opt. cost ratio", Printf.sprintf "%.2f  (paper: 1.18)" mx);
         ("Avg. PostOrder to opt. cost ratio", Printf.sprintf "%.3f  (paper: 1.01)"
            (Tt_util.Statistics.mean stats));
         ("Std. dev. of the ratio", Printf.sprintf "%.3f  (paper: 0.01)"
            (Tt_util.Statistics.stddev stats))
       ]);
  if k = 0 then
    print_endline "PostOrder optimal on every instance at this scale; Figure 5 skipped."
  else begin
    (* the paper's Figure 5 restricts the profile to non-optimal cases *)
    let costs =
      List.filter_map
        (fun (_, po, opt) ->
          if po > opt then Some [| float_of_int opt; float_of_int po |] else None)
        results
      |> Array.of_list
    in
    let curves = P.compute ~names:[ "Optimal"; "PostOrder" ] costs in
    maybe_csv "fig5" curves;
    print_string
      (Plot.render
         ~title:
           (Printf.sprintf
              "Figure 5: memory perf profile on the %d non-optimal instances" k)
         curves)
  end

(* ------------------------------------------------------------------ Fig. 6 *)

let fig6 () =
  header "Figure 6" "running times of PostOrder / Liu / MinMem";
  let insts = Lazy.force corpus in
  let algos = [ ("MinMem", Job.Minmem); ("PostOrder", Job.Postorder); ("Liu", Job.Liu) ] in
  let batch =
    List.concat_map
      (fun (i : Tt_workloads.Dataset.instance) ->
        List.map
          (fun (name, algo) ->
            Job.make ~label:(i.name ^ " " ^ name) i.tree (Job.Min_memory algo))
          algos)
      insts
  in
  let reports, summary = run_engine_batch batch in
  print_digest reports;
  if summary.Executor.cache_hits > 0 then
    Printf.printf
      "note: %d jobs came from the result cache; their walls measure the lookup,\n\
       not the solver, so the runtime profile below is only meaningful on a cold cache.\n"
      summary.Executor.cache_hits;
  let k = List.length algos in
  let costs =
    Array.init (List.length insts) (fun r ->
        Array.init k (fun j -> Float.max 1e-9 reports.((r * k) + j).Executor.wall))
  in
  let names = List.map fst algos in
  let curves = P.compute ~tau_max:5.0 ~names costs in
  maybe_csv "fig6" curves;
  print_string (Plot.render ~title:"Figure 6: runtime performance profile" curves);
  List.iteri
    (fun j name ->
      Printf.printf "%-10s fastest on %.0f%% of instances\n" name
        (100. *. P.fraction_within costs ~column:j ~tau:1.0))
    names;
  Printf.printf "paper shape: MinMem fastest in ~80%% of cases, Liu slowest -> %s wins here\n"
    (P.dominant curves)

(* ------------------------------------------------------------------ Fig. 7 *)

(* MinIO instances: per tree, a few memory budgets between the largest
   single-node requirement and the traversal's in-core peak. *)
let minio_instances order_of =
  List.filter_map
    (fun (i : Tt_workloads.Dataset.instance) ->
      let order = order_of i.tree in
      let peak = Tt_core.Traversal.peak i.tree order in
      let lo = T.max_mem_req i.tree in
      if peak <= lo then None
      else
        Some
          (List.filter_map
             (fun fraction ->
               let memory = lo + int_of_float (fraction *. float_of_int (peak - lo)) in
               if memory >= peak then None else Some (i, order, memory))
             [ 0.0; 0.25; 0.5; 0.75 ])
    )
    (Lazy.force corpus)
  |> List.concat

(* The paper's budget sweep: positions in the gap between the
   working-set floor and the in-core optimum of the MinMem traversal.
   Trees whose gap is empty contribute no cases, as in {!minio_instances}. *)
let minio_fractions = [ 0.0; 0.25; 0.5; 0.75 ]

let fig7 () =
  header "Figure 7" "I/O volume of the six eviction heuristics on MinMem traversals";
  let insts = Array.of_list (Lazy.force corpus) in
  let policies = Tt_core.Minio.all_policies in
  let batch =
    Array.to_list insts
    |> List.concat_map (fun (i : Tt_workloads.Dataset.instance) ->
           List.concat_map
             (fun frac ->
               List.map
                 (fun (pname, policy) ->
                   Job.make
                     ~label:(Printf.sprintf "%s f=%g %s" i.name frac pname)
                     i.tree
                     (Job.Min_io { policy; budget = Job.Fraction frac }))
                 policies)
             minio_fractions)
  in
  let reports, _ = run_engine_batch batch in
  print_digest reports;
  let np = List.length policies and nf = List.length minio_fractions in
  (* regroup into (tree, budget) rows of one I/O volume per policy; drop
     trees where the MinMem traversal already fits in the floor *)
  let rows = ref [] in
  Array.iteri
    (fun r (i : Tt_workloads.Dataset.instance) ->
      let floor = T.max_mem_req i.tree in
      for fi = nf - 1 downto 0 do
        let cell j =
          match reports.((r * nf * np) + (fi * np) + j).Executor.result with
          | Ok (Job.Io { io = Some io; _ }) -> float_of_int io
          | Ok (Job.Io { io = None; _ }) -> infinity
          | _ -> infinity
        in
        let in_core =
          match reports.((r * nf * np) + (fi * np)).Executor.result with
          | Ok (Job.Io { in_core; _ }) -> in_core
          | _ -> floor
        in
        if in_core > floor then rows := Array.init np cell :: !rows
      done)
    insts;
  let costs = Array.of_list !rows in
  Printf.printf "%d (tree, memory) cases\n" (Array.length costs);
  let names = List.map fst policies in
  let curves = P.compute ~tau_max:4.0 ~names costs in
  maybe_csv "fig7" curves;
  print_string (Plot.render ~title:"Figure 7: I/O perf profile (MinMem traversals)" curves);
  List.iteri
    (fun j name ->
      Printf.printf "%-14s best on %5.1f%% of cases, avg ratio %.3f\n" name
        (100. *. P.fraction_within costs ~column:j ~tau:1.0)
        (Tt_util.Statistics.mean (P.ratios costs ~column:j)))
    names;
  Printf.printf "paper shape: First Fit ~ Best K Comb. > fills > LSNF/Best Fit -> winner: %s\n"
    (P.dominant curves);
  (* extension: gap to the divisible lower bound. The MinMem traversals
     are fetched from the engine cache — the sweep above already paid
     for them once per tree. *)
  let cache = Executor.cache (Lazy.force engine) in
  let gaps = ref [] in
  Array.iteri
    (fun r (i : Tt_workloads.Dataset.instance) ->
      let pre = Job.make i.tree (Job.Min_memory Job.Minmem) in
      match Tt_engine.Cache.find cache (Job.id pre) with
      | Some (Job.Memory { order; _ }) ->
          let ff_col =
            let rec find j = function
              | [] -> 1
              | (_, p) :: _ when p = Tt_core.Minio.First_fit -> j
              | _ :: rest -> find (j + 1) rest
            in
            find 0 policies
          in
          for fi = 0 to nf - 1 do
            let ff = (r * nf * np) + (fi * np) + ff_col in
            match reports.(ff).Executor.result with
            | Ok (Job.Io { io = Some io; memory; in_core })
              when in_core > T.max_mem_req i.tree -> (
                match
                  Tt_core.Minio.divisible_lower_bound i.tree ~memory ~order
                with
                | Some lb when lb > 0. -> gaps := (float_of_int io /. lb) :: !gaps
                | _ -> ())
            | _ -> ()
          done
      | _ -> ())
    insts;
  if !gaps <> [] then
    Printf.printf
      "extension: First Fit vs divisible-LSNF lower bound: avg %.3fx, max %.3fx (%d cases)\n"
      (Tt_util.Statistics.mean (Array.of_list !gaps))
      (snd (Tt_util.Statistics.min_max (Array.of_list !gaps)))
      (List.length !gaps)

(* ------------------------------------------------------------------ Fig. 8 *)

let fig8 () =
  header "Figure 8" "traversal sources for out-of-core execution (policy: First Fit)";
  let sources =
    [ ("PostOrder + First Fit", fun t -> snd (Tt_core.Postorder_opt.run t));
      ("Liu + First Fit", fun t -> snd (Tt_core.Liu_exact.run t));
      ("MinMem + First Fit", fun t -> snd (Tt_core.Minmem.run t))
    ]
  in
  let portfolio_io tree memory =
    let rng = Tt_util.Rng.create (!seed + 3) in
    match Tt_core.Minio_search.run ~attempts:6 ~rng tree ~memory with
    | Some o -> float_of_int o.Tt_core.Minio_search.io
    | None -> infinity
  in
  (* memory budgets must be shared across traversals: use the MinMem
     traversal peaks to define them, as the paper ranges from max MemReq
     to the minimal memory of the traversal *)
  let cases = minio_instances (fun t -> snd (Tt_core.Minmem.run t)) in
  let costs =
    List.map
      (fun ((i : Tt_workloads.Dataset.instance), _minmem_order, memory) ->
        Array.of_list
          (List.map
             (fun (_, order_of) ->
               let order = order_of i.tree in
               match
                 Tt_core.Minio.io_volume i.tree ~memory ~order Tt_core.Minio.First_fit
               with
               | Some io -> float_of_int io
               | None -> infinity)
             sources
          @ [ portfolio_io i.tree memory ]))
      cases
    |> Array.of_list
  in
  let names = List.map fst sources @ [ "Portfolio (extension)" ] in
  let curves = P.compute ~tau_max:4.0 ~names costs in
  maybe_csv "fig8" curves;
  print_string (Plot.render ~title:"Figure 8: I/O by traversal source" curves);
  List.iteri
    (fun j name ->
      Printf.printf "%-22s best on %5.1f%% of cases, avg ratio %.3f\n" name
        (100. *. P.fraction_within costs ~column:j ~tau:1.0)
        (Tt_util.Statistics.mean (P.ratios costs ~column:j)))
    names;
  Printf.printf "paper shape: PostOrder best, Liu in between, MinMem worst -> winner: %s\n"
    (P.dominant curves)

(* ---------------------------------------------------- Fig. 9 / Table II *)

let fig9_table2 () =
  header "Figure 9 + Table II" "PostOrder vs optimal on randomly re-weighted trees";
  let random_insts =
    Tt_workloads.Random_weights.corpus ~variants:3 ~seed:(!seed + 7) (Lazy.force corpus)
  in
  Printf.printf "%d random trees (structures from the corpus, weights ~ §VI-E)\n"
    (List.length random_insts);
  let batch =
    List.concat_map
      (fun (i : Tt_workloads.Dataset.instance) ->
        [ Job.make ~label:(i.name ^ " PostOrder") i.tree (Job.Min_memory Job.Postorder);
          Job.make ~label:(i.name ^ " Liu") i.tree (Job.Min_memory Job.Liu)
        ])
      random_insts
  in
  let reports, _ = run_engine_batch batch in
  print_digest reports;
  let peak r =
    match reports.(r).Executor.result with
    | Ok (Job.Memory { peak; _ }) -> peak
    | _ -> invalid_arg "fig9: unexpected result"
  in
  let results =
    List.mapi (fun r _ -> (peak (2 * r), peak ((2 * r) + 1))) random_insts
  in
  let ratios =
    Array.of_list (List.map (fun (po, opt) -> float_of_int po /. float_of_int opt) results)
  in
  let k = Array.length (Array.of_seq (Seq.filter (fun r -> r > 1. +. 1e-12) (Array.to_seq ratios))) in
  print_string
    (Table.render_kv
       [ ("Non optimal PostOrder traversals", Printf.sprintf "%.0f%%  (paper: 61%%)"
            (100. *. float_of_int k /. float_of_int (Array.length ratios)));
         ("Max. PostOrder to opt. cost ratio", Printf.sprintf "%.2f  (paper: 2.22)"
            (snd (Tt_util.Statistics.min_max ratios)));
         ("Avg. PostOrder to opt. cost ratio", Printf.sprintf "%.3f  (paper: 1.12)"
            (Tt_util.Statistics.mean ratios));
         ("Std. dev. of the ratio", Printf.sprintf "%.3f  (paper: 0.13)"
            (Tt_util.Statistics.stddev ratios))
       ]);
  let costs =
    Array.of_list
      (List.map (fun (po, opt) -> [| float_of_int opt; float_of_int po |]) results)
  in
  let curves = P.compute ~tau_max:2.5 ~names:[ "Optimal"; "PostOrder" ] costs in
  maybe_csv "fig9" curves;
  print_string (Plot.render ~title:"Figure 9: memory perf profile on random trees" curves)

(* -------------------------------------------------------------- ablations *)

let ablation_child_order () =
  header "Ablation" "child-ordering rule inside the postorder algorithm";
  let results = Lazy.force memory_results in
  let rules =
    [ ( "increasing P-f (Liu's rule)",
        fun tree ->
          float_of_int (Tt_core.Postorder_opt.best_memory tree) );
      ( "natural order",
        fun tree ->
          float_of_int
            (Tt_core.Postorder_opt.peak_with_child_order tree (fun i ->
                 tree.T.children.(i))) );
      ( "increasing subtree peak",
        fun tree ->
          let peaks = Tt_core.Postorder_opt.subtree_peaks tree in
          float_of_int
            (Tt_core.Postorder_opt.peak_with_child_order tree (fun i ->
                 let cs = Array.copy tree.T.children.(i) in
                 Array.sort (fun a b -> compare peaks.(a) peaks.(b)) cs;
                 cs)) )
    ]
  in
  let rows =
    List.map
      (fun (name, f) ->
        let ratios =
          List.map
            (fun ((i : Tt_workloads.Dataset.instance), _, opt) ->
              f i.tree /. float_of_int opt)
            results
        in
        let a = Array.of_list ratios in
        [ name;
          Printf.sprintf "%.4f" (Tt_util.Statistics.mean a);
          Printf.sprintf "%.3f" (snd (Tt_util.Statistics.min_max a));
          Printf.sprintf "%.1f%%"
            (100. *. Tt_util.Statistics.fraction (fun r -> r <= 1. +. 1e-12) a)
        ])
      rules
  in
  print_string
    (Table.render ~header:[ "child order"; "avg ratio"; "max ratio"; "optimal" ] rows)

let ablation_bestk () =
  header "Ablation" "Best-K Combination for K = 1..8 (paper uses K = 5)";
  let cases = minio_instances (fun t -> snd (Tt_core.Minmem.run t)) in
  let ks = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let policies =
    List.map (fun k -> (Printf.sprintf "Best-%d" k, Tt_core.Minio.Best_k k)) ks
    @ [ ("First Fit", Tt_core.Minio.First_fit) ]
  in
  let costs =
    List.map
      (fun ((i : Tt_workloads.Dataset.instance), order, memory) ->
        Array.of_list
          (List.map
             (fun (_, pol) ->
               match Tt_core.Minio.io_volume i.tree ~memory ~order pol with
               | Some io -> float_of_int io
               | None -> infinity)
             policies))
      cases
    |> Array.of_list
  in
  let rows =
    List.mapi
      (fun j (name, _) ->
        [ name;
          Printf.sprintf "%.4f" (Tt_util.Statistics.mean (P.ratios costs ~column:j));
          Printf.sprintf "%.1f%%" (100. *. P.fraction_within costs ~column:j ~tau:1.0)
        ])
      policies
  in
  print_string (Table.render ~header:[ "policy"; "avg ratio"; "best" ] rows)

let rounds () =
  header "MinMem rounds" "number of Explore rounds (complexity evidence)";
  let insts = Lazy.force corpus in
  let data =
    List.map
      (fun (i : Tt_workloads.Dataset.instance) ->
        (T.size i.tree, Tt_core.Minmem.iterations i.tree))
      insts
  in
  let rs = Array.of_list (List.map (fun (_, r) -> float_of_int r) data) in
  let ps = Array.of_list (List.map (fun (p, _) -> float_of_int p) data) in
  Printf.printf
    "rounds: avg %.1f, max %.0f over trees of avg size %.0f (worst-case bound: O(p))\n"
    (Tt_util.Statistics.mean rs)
    (snd (Tt_util.Statistics.min_max rs))
    (Tt_util.Statistics.mean ps)




(* ------------------------------------------------------ parallel extension *)

let parallel_section () =
  header "Parallel extension"
    "memory-constrained parallel traversal (the conclusion's future work)";
  let insts =
    List.filter
      (fun (i : Tt_workloads.Dataset.instance) ->
        let p = T.size i.tree in
        p >= 50 && p <= 1200)
      (Lazy.force corpus)
  in
  let work tree i = 1 + (tree.T.n.(i) / 8) in
  let procs_list = [ 1; 2; 4; 8; 16 ] in
  let mem_factors = [ (1.0, "1.0x"); (1.5, "1.5x"); (3.0, "3.0x") ] in
  Printf.printf "%d trees; speedup vs 1 processor (geometric mean)\n" (List.length insts);
  let batch =
    List.concat_map
      (fun (factor, _) ->
        List.concat_map
          (fun procs ->
            List.map
              (fun (i : Tt_workloads.Dataset.instance) ->
                Job.make
                  ~label:(Printf.sprintf "%s p=%d m=%gx" i.name procs factor)
                  i.tree
                  (Job.Schedule { procs; mem_factor = factor }))
              insts)
          procs_list)
      mem_factors
  in
  let reports, _ = run_engine_batch batch in
  print_digest reports;
  let n = List.length insts and np = List.length procs_list in
  let rows =
    List.mapi
      (fun fi (_, label) ->
        let cells =
          List.mapi
            (fun pi _ ->
              let speedups =
                List.mapi
                  (fun ii (i : Tt_workloads.Dataset.instance) ->
                    let seq =
                      Tt_core.Parallel.sequential_makespan i.tree ~work:(work i.tree)
                    in
                    match
                      reports.((((fi * np) + pi) * n) + ii).Executor.result
                    with
                    | Ok (Job.Sched { makespan = Some m; _ }) ->
                        Some (float_of_int seq /. float_of_int m)
                    | _ -> None)
                  insts
                |> List.filter_map Fun.id
              in
              if speedups = [] then "-"
              else
                Printf.sprintf "%.2f"
                  (Tt_util.Statistics.geometric_mean (Array.of_list speedups)))
            procs_list
        in
        (label ^ " memory") :: cells)
      mem_factors
  in
  print_string
    (Table.render
       ~header:("budget" :: List.map (fun p -> Printf.sprintf "p=%d" p) procs_list)
       rows);
  print_endline
    "With memory pinned at the sequential optimum, extra processors cannot be\n\
     fed (speedup saturates); relaxing the budget restores parallelism --\n\
     memory, not processors, is the binding resource, which is the paper's\n\
     closing point."

(* ------------------------------------------------------- scheduling tier *)

let sched_section () =
  header "Scheduling tier"
    "memory/makespan Pareto frontier of the tt_sched schedulers";
  let insts =
    List.filter
      (fun (i : Tt_workloads.Dataset.instance) ->
        let p = T.size i.tree in
        p >= 50 && p <= 600)
      (Lazy.force corpus)
  in
  let procs_list = [ 1; 2; 4; 8 ] in
  let steps = 5 in
  Printf.printf "%d trees; sweep of %d budget steps from minmem to total_f\n"
    (List.length insts) steps;
  let batch =
    List.concat_map
      (fun procs ->
        List.map
          (fun (i : Tt_workloads.Dataset.instance) ->
            Job.make
              ~label:(Printf.sprintf "%s p=%d" i.name procs)
              i.tree
              (Job.Pareto_sweep { procs; steps }))
          insts)
      procs_list
  in
  let reports, _ = run_engine_batch batch in
  print_digest reports;
  let n = List.length insts in
  let points_of pi ii =
    match reports.((pi * n) + ii).Executor.result with
    | Ok (Job.Pareto { points; _ }) -> points
    | _ -> []
  in
  let algo_points algo points =
    List.filter
      (fun (p : Tt_sched.Pareto.point) -> p.Tt_sched.Pareto.algo = algo)
      points
  in
  (* per-algo points come out of the sweep in budget-ascending order *)
  let makespan_at pick algo points =
    match algo_points algo points with
    | [] -> None
    | ps -> (
        match pick with
        | `Min_budget -> Some (List.hd ps).Tt_sched.Pareto.makespan
        | `Max_budget ->
            Some (List.hd (List.rev ps)).Tt_sched.Pareto.makespan)
  in
  let geo = function
    | [] -> "-"
    | l ->
        Printf.sprintf "%.2f"
          (Tt_util.Statistics.geometric_mean (Array.of_list l))
  in
  let rows =
    List.mapi
      (fun pi procs ->
        let speedups sel =
          List.filter_map Fun.id
            (List.mapi
               (fun ii (i : Tt_workloads.Dataset.instance) ->
                 let work = Tt_sched.Work.default i.tree in
                 let seq = Tt_core.Parallel.sequential_makespan i.tree ~work in
                 Option.map
                   (fun m -> float_of_int seq /. float_of_int m)
                   (sel (points_of pi ii)))
               insts)
        in
        let frontier_avg =
          let sizes =
            List.mapi
              (fun ii _ ->
                float_of_int
                  (List.length (Tt_sched.Pareto.frontier (points_of pi ii))))
              insts
          in
          Tt_util.Statistics.mean (Array.of_list sizes)
        in
        [ string_of_int procs;
          geo (speedups (makespan_at `Min_budget "greedy"));
          geo (speedups (makespan_at `Max_budget "greedy"));
          geo (speedups (makespan_at `Min_budget "booking"));
          geo (speedups (makespan_at `Max_budget "split"));
          Printf.sprintf "%.1f" frontier_avg
        ])
      procs_list
  in
  print_string
    (Table.render
       ~header:
         [ "procs"; "greedy@min"; "greedy@max"; "booking@min"; "split";
           "frontier" ]
       rows);
  (* one representative frontier in full, largest tree at 4 processors *)
  (match
     List.mapi (fun ii i -> (ii, i)) insts
     |> List.fold_left
          (fun acc (ii, (i : Tt_workloads.Dataset.instance)) ->
            match acc with
            | Some (_, best) when T.size best.Tt_workloads.Dataset.tree >= T.size i.tree ->
                acc
            | _ -> Some (ii, i))
          None
   with
  | Some (ii, i) when List.mem 4 procs_list ->
      let pi = ref 0 in
      List.iteri (fun k p -> if p = 4 then pi := k) procs_list;
      let front = Tt_sched.Pareto.frontier (points_of !pi ii) in
      Printf.printf "frontier of %s (p=%d) at 4 processors:\n" i.name
        (T.size i.tree);
      List.iter
        (fun p -> Printf.printf "  %s\n" (Tt_sched.Pareto.point_to_string p))
        front
  | _ -> ());
  print_endline
    "Greedy converts memory into speedup; booking holds the guaranteed\n\
     minimum-memory point (never deadlocks at the sequential optimum);\n\
     splitting buys makespan with up to procs sequential peaks -- together\n\
     they trace the memory/makespan trade-off of the successor papers."

(* ------------------------------------------------- amalgamation ablation *)

let ablation_amalgamation () =
  header "Ablation" "amalgamation level vs optimal in-core memory";
  let ms = Tt_workloads.Dataset.matrices ~scale:!scale ~seed:!seed () in
  let limits = [ 1; 2; 4; 16; 64 ] in
  let rows =
    List.filter_map
      (fun (name, m) ->
        if (Tt_sparse.Csr.nnz m) > 40_000 then None
        else begin
          let cells =
            List.map
              (fun limit ->
                let asm =
                  Tt_workloads.Pipeline.assembly_tree
                    ~ordering:Tt_workloads.Pipeline.Min_degree ~amalgamation:limit m
                in
                let tree = asm.Tt_etree.Assembly.tree in
                Printf.sprintf "%d/%d" (T.size tree) (Tt_core.Minmem.min_memory tree))
              limits
          in
          Some (name :: cells)
        end)
      ms
  in
  print_string
    (Table.render
       ~header:("matrix" :: List.map (fun l -> Printf.sprintf "a%d (p/mem)" l) limits)
       rows);
  print_endline
    "More amalgamation: smaller trees, denser fronts, higher optimal memory --\n\
     the granularity trade-off the paper's corpus construction exercises."

(* -------------------------------------------------- heuristic optimality *)

let minio_gap () =
  header "MinIO optimality gap"
    "heuristics vs the exact branch-and-bound (extension beyond the paper)";
  let cases =
    List.filter
      (fun ((i : Tt_workloads.Dataset.instance), _, _) -> T.size i.tree <= 120)
      (minio_instances (fun t -> snd (Tt_core.Minmem.run t)))
  in
  Printf.printf "%d cases with at most 120 nodes\n" (List.length cases);
  let per_policy = Hashtbl.create 8 in
  let solved = ref 0 and unsolved = ref 0 in
  List.iter
    (fun ((i : Tt_workloads.Dataset.instance), order, memory) ->
      match Tt_core.Minio_exact.given_order ~node_budget:300_000 i.tree ~memory ~order with
      | exception Failure _ -> incr unsolved
      | None -> ()
      | Some exact ->
          incr solved;
          List.iter
            (fun (name, pol) ->
              match Tt_core.Minio.io_volume i.tree ~memory ~order pol with
              | Some io ->
                  let num, den, worst =
                    try Hashtbl.find per_policy name with Not_found -> (0, 0, 1.0)
                  in
                  let ratio =
                    if exact = 0 then if io = 0 then 1.0 else infinity
                    else float_of_int io /. float_of_int exact
                  in
                  Hashtbl.replace per_policy name
                    ((if io = exact then num + 1 else num), den + 1, Float.max worst ratio)
              | None -> ())
            Tt_core.Minio.all_policies)
    cases;
  Printf.printf "exact optimum computed on %d cases (%d exceeded the search budget)\n"
    !solved !unsolved;
  let rows =
    List.map
      (fun (name, _) ->
        let num, den, worst = try Hashtbl.find per_policy name with Not_found -> (0, 1, nan) in
        [ name;
          Printf.sprintf "%.1f%%" (100. *. float_of_int num /. float_of_int (max den 1));
          (if worst = infinity then "inf" else Printf.sprintf "%.2f" worst)
        ])
      Tt_core.Minio.all_policies
  in
  print_string (Table.render ~header:[ "policy"; "exactly optimal"; "worst ratio" ] rows)

(* ------------------------------------------------------------- serving *)

(* The network layer's overhead on top of the engine: an in-process
   server on an ephemeral port, driven closed-loop by the seeded load
   generator. The entries are the engine sections' kinds of work, sized
   small so the section measures request turnaround, not solver time. *)
let serve_section () =
  header "Serve" "tt_server requests/sec and latency percentiles (loopback)";
  let module Srv = Tt_server.Server in
  let module L = Tt_server.Loadgen in
  let config = { Srv.default_config with Srv.port = 0; workers = 2 } in
  let server = Srv.create ~config () in
  Srv.start server;
  let run_profile ~connections ~requests =
    let s =
      L.run
        { L.default_config with
          L.port = Srv.port server;
          connections;
          requests;
          seed = !seed
        }
    in
    Printf.printf
      "%d conns x %d reqs: %7.1f req/s  p50 %.4fs  p95 %.4fs  p99 %.4fs  \
       (ok %d, errors %d)\n"
      connections (s.L.requests / connections) s.L.throughput_rps s.L.p50_s
      s.L.p95_s s.L.p99_s s.L.ok
      (s.L.requests - s.L.ok)
  in
  run_profile ~connections:1 ~requests:(60 * !scale);
  run_profile ~connections:2 ~requests:(120 * !scale);
  run_profile ~connections:4 ~requests:(240 * !scale);
  (* Chaos profile: the same seeded workload, but routed through the
     in-process fault proxy with client retries. Measures the resilience
     tax — and checks the layer's headline invariant: the chaos run's
     value digest equals a clean run's (faults cost latency, never
     results). *)
  let profile ?chaos ?(retry = Tt_engine.Retry.none) ~tag () =
    L.run
      { L.default_config with
        L.port = Srv.port server;
        connections = 2;
        requests = 60 * !scale;
        seed = !seed;
        retry;
        chaos;
        tag
      }
  in
  let clean = profile ~tag:"bclean" () in
  let faults =
    Tt_server.Netfault.create_faults ~drop:0.03 ~truncate:0.02 ~stall:0.05
      ~split:0.2 ~seed:!seed ()
  in
  let chaos =
    profile ~chaos:faults
      ~retry:(Tt_engine.Retry.create ~retries:6 ~seed:!seed ())
      ~tag:"bchaos" ()
  in
  Printf.printf
    "chaos (retries on): %7.1f req/s vs %7.1f clean  (ok %d, transport %d, \
     injected %d)  digest %s\n"
    chaos.L.throughput_rps clean.L.throughput_rps chaos.L.ok
    chaos.L.transport_errors
    (match chaos.L.proxy with
    | Some p -> Tt_server.Netfault.injected p
    | None -> 0)
    (match (clean.L.value_digest, chaos.L.value_digest) with
    | Some a, Some b when a = b -> "matches clean run"
    | Some _, Some _ -> "MISMATCH vs clean run"
    | _ -> "(missing)");
  Srv.shutdown server;
  let m = Tt_server.Metrics.snapshot (Srv.metrics server) in
  Printf.printf
    "server side: %d solves, %d jobs (%d cache hits), window p50 %.4fs p99 %.4fs\n"
    m.Tt_server.Metrics.requests_solve m.Tt_server.Metrics.jobs
    m.Tt_server.Metrics.job_cache_hits m.Tt_server.Metrics.latency.Tt_server.Metrics.p50_s
    m.Tt_server.Metrics.latency.Tt_server.Metrics.p99_s

(* -------------------------------------------------------------- cluster *)

(* The shard tier's two headline numbers: how throughput and tail
   latency move from 1 to 2 to 4 shards behind the router, and whether
   placement stays invisible in results — every shard count must land
   the same value digest (jobs are content-addressed; the ring only
   decides where they compute). *)
let cluster_section () =
  header "Cluster" "tt_shard req/s and latency through the router (loopback)";
  let module Cl = Tt_shard.Cluster in
  let module L = Tt_server.Loadgen in
  let requests = 60 * !scale in
  let digests =
    List.map
      (fun shards ->
        let c = Cl.start ~shards ~workers:2 () in
        let s =
          L.run
            { L.default_config with
              L.port = Cl.router_port c;
              connections = 2;
              requests;
              seed = !seed;
              tag = Printf.sprintf "bcl%d" shards
            }
        in
        Cl.stop c;
        let snap = Cl.snapshot c in
        Printf.printf
          "%d shard%s: %7.1f req/s  p50 %.4fs  p95 %.4fs  p99 %.4fs  (ok %d, \
           forwards %d, failovers %d, peer hits %d)\n"
          shards
          (if shards = 1 then " " else "s")
          s.L.throughput_rps s.L.p50_s s.L.p95_s s.L.p99_s s.L.ok
          snap.Tt_shard.Metrics.forwards_total snap.Tt_shard.Metrics.failovers
          snap.Tt_shard.Metrics.peer_hits;
        s.L.value_digest)
      [ 1; 2; 4 ]
  in
  match digests with
  | Some a :: rest when List.for_all (( = ) (Some a)) rest ->
      Printf.printf "placement-invariant: value digest %s at every shard count\n" a
  | _ -> Printf.printf "placement-invariant: DIGEST MISMATCH across shard counts\n"

(* -------------------------------------------------------------- nemesis *)

(* Availability under faults, by shard count: the same seeded nemesis
   schedule (kills, stalls, partitions, membership changes where the
   ring allows them) runs against 1, 2 and 4 shards while a retrying
   load generator measures what clients actually experience — req/s,
   error rate, and a per-second ok/error timeline. The 1-shard row is
   the honest baseline: with nowhere to fail over, availability rides
   entirely on supervised restart and breaker recovery. *)
let nemesis_section () =
  header "Nemesis"
    "availability under a seeded fault schedule, by shard count";
  let module N = Tt_shard.Nemesis in
  let module L = Tt_server.Loadgen in
  List.iter
    (fun shards ->
      let cfg =
        { N.default_config with
          N.seed = !seed;
          shards;
          max_shards = max shards 2;
          steps = 6;
          requests = 60 * !scale;
          connections = 2
        }
      in
      let r = N.run cfg in
      let errors =
        r.N.load.L.requests - r.N.load.L.ok
      in
      Printf.printf
        "%d shard%s: %7.1f req/s  ok %d/%d (%.1f%% errors)  restarts %d  \
         breaker %d/%d  ring epoch %d  digest %s\n"
        shards
        (if shards = 1 then " " else "s")
        r.N.load.L.throughput_rps r.N.load.L.ok r.N.load.L.requests
        (100. *. float_of_int errors /. float_of_int r.N.load.L.requests)
        r.N.restarts r.N.breaker_opens r.N.breaker_closes r.N.ring_epoch
        (if r.N.digest_match then "match" else "MISMATCH");
      Printf.printf "  timeline (ok/err per s):";
      List.iter
        (fun (s, o, e) -> Printf.printf " t+%ds %d/%d" s o e)
        r.N.timeline;
      Printf.printf "\n%!")
    [ 1; 2; 4 ]

(* ------------------------------------------------------------- overload *)

(* Brownout behaviour by pressure: the seeded overload nemesis (one
   shard stalled, open-loop load) at 1x, 2x and 4x the measured clean
   capacity. What should move with overdrive is the shed column and the
   batch/interactive split — batch browns out first while interactive
   goodput degrades last — and what should never move is the untyped
   column (always 0: every refusal typed, every ok within deadline). *)
let overload_section () =
  header "Overload"
    "goodput and typed shedding by overdrive, one shard stalled";
  let module ON = Tt_shard.Overload_nemesis in
  List.iter
    (fun overdrive ->
      let cfg =
        { ON.default_config with
          ON.seed = !seed;
          overdrive;
          requests = 100 * !scale
        }
      in
      let r = ON.run cfg in
      Printf.printf
        "%.0fx: offered %6.0f req/s  ok %d/%d  shed %d  untyped %d  \
         interactive %.2f  batch %.2f  hedges won %d\n%!"
        overdrive r.ON.offered_rps r.ON.ok r.ON.issued r.ON.sheds r.ON.untyped
        (ON.goodput r.ON.interactive) (ON.goodput r.ON.batch) r.ON.hedge_won)
    [ 1.; 2.; 4. ]

(* ----------------------------------------------------------------- perf *)

(* Wall times of the core solvers on the seeded Perf_suite instances,
   written out as BENCH_CORE.json. Unlike the Bechamel section, the
   output is machine-readable and digest-carrying, so successive PRs can
   both diff the timings and prove the kernels still compute the same
   results. *)
let perf_section () =
  header "Perf" "core-kernel wall times -> BENCH_CORE.json";
  let module MB = Tt_profile.Microbench in
  let mode =
    if !perf_quick then Tt_workloads.Perf_suite.Quick else Tt_workloads.Perf_suite.Full
  in
  let reps =
    if !perf_reps > 0 then !perf_reps else Tt_workloads.Perf_suite.default_reps mode
  in
  let specs = Tt_workloads.Perf_suite.specs mode in
  let results =
    MB.measure ~reps ~progress:(fun l -> Printf.printf "[perf] %s\n%!" l) specs
  in
  print_string (MB.render results);
  MB.write_json !perf_out results;
  Printf.printf "[perf] wrote %s (%d kernels, %d timed reps each)\n" !perf_out
    (List.length results) reps

(* ------------------------------------------------------------------ huge *)

(* The huge-tree tier end to end: streaming generation plus certified
   MinMem bounds at p = 1M and 10M on the three flat-tree families. Each
   row prints the certified [lower, upper] sandwich and its gap; the 10M
   rows also print the per-node slowdown against the 1M row of the same
   family — the near-linearity witness (1.00x = perfectly linear in p).
   Opt-in via --section huge: the 10M rows allocate ~1 GB per instance. *)
let huge_section () =
  header "Huge" "certified MinMem bounds at p = 1M / 10M, flat-tree tier";
  let module Ma = Tt_core.Minmem_approx in
  let families =
    [ ( "caterpillar",
        fun ~p ~seed -> Tt_workloads.Huge.caterpillar ~p ~seed () );
      ("binary", fun ~p ~seed -> Tt_workloads.Huge.binary ~p ~seed ());
      ("random", fun ~p ~seed -> Tt_workloads.Huge.random_attach ~p ~seed ())
    ]
  in
  let sizes = [ 1_000_000; 10_000_000 ] in
  List.iter
    (fun (name, build) ->
      let base = ref nan in
      List.iter
        (fun p ->
          let t0 = Unix.gettimeofday () in
          let ft = build ~p ~seed:!seed in
          let t_gen = Unix.gettimeofday () -. t0 in
          let t0 = Unix.gettimeofday () in
          let b = Ma.run ft in
          let t_run = Unix.gettimeofday () -. t0 in
          let scaling =
            if Float.is_nan !base then begin
              base := t_run /. float_of_int p;
              ""
            end
            else
              Printf.sprintf "  per-node vs 1M %.2fx"
                (t_run /. float_of_int p /. !base)
          in
          Printf.printf
            "%-11s p=%8d  gen %5.2fs  bounds [%d, %d]  gap %5.3f%%  \
             rounds %d  %s  %6.2fs%s\n%!"
            name p t_gen b.Ma.lower b.Ma.upper
            (100. *. Ma.gap b)
            b.Ma.rounds
            (if b.Ma.exact then "exact " else "approx")
            t_run scaling)
        sizes)
    families

(* ------------------------------------------------------------- bechamel *)

let bechamel_suite () =
  header "Bechamel" "micro-benchmarks, one Test.make per table/figure kernel";
  let open Bechamel in
  let tree = (Tt_workloads.Pipeline.assembly_tree (Tt_sparse.Spgen.grid2d (24 * !scale))).Tt_etree.Assembly.tree in
  let _, order = Tt_core.Minmem.run tree in
  let memory = T.max_mem_req tree in
  let tests =
    [ Test.make ~name:"table1_fig5_postorder" (Staged.stage (fun () ->
          ignore (Tt_core.Postorder_opt.run tree)));
      Test.make ~name:"fig6_liu" (Staged.stage (fun () ->
          ignore (Tt_core.Liu_exact.run tree)));
      Test.make ~name:"fig6_minmem" (Staged.stage (fun () ->
          ignore (Tt_core.Minmem.run tree)));
      Test.make ~name:"fig7_first_fit" (Staged.stage (fun () ->
          ignore (Tt_core.Minio.io_volume tree ~memory ~order Tt_core.Minio.First_fit)));
      Test.make ~name:"fig7_best_k" (Staged.stage (fun () ->
          ignore (Tt_core.Minio.io_volume tree ~memory ~order (Tt_core.Minio.Best_k 5))));
      Test.make ~name:"fig8_postorder_first_fit" (Staged.stage (fun () ->
          let order = snd (Tt_core.Postorder_opt.run tree) in
          ignore (Tt_core.Minio.io_volume tree ~memory ~order Tt_core.Minio.First_fit)));
      Test.make ~name:"fig9_reweight_postorder" (Staged.stage (fun () ->
          let rng = Tt_util.Rng.create 1 in
          let t = Tt_workloads.Random_weights.reweight ~rng tree in
          ignore (Tt_core.Postorder_opt.best_memory t)));
      Test.make ~name:"theorem1_harpoon" (Staged.stage (fun () ->
          ignore (Tt_core.Instances.theorem1_ratio ~branches:3 ~levels:4 ~m:300 ~eps:1)))
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      let a = analyze results in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        a)
    (List.map (fun t -> Test.make_grouped ~name:"g" [ t ]) tests)

(* ------------------------------------------------------------------ main *)

let section_runners =
  [ ("theorem1", theorem1);
    ("theorem2", theorem2);
    ("fig5", fig5_table1);
    ("table1", fig5_table1);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9_table2);
    ("table2", fig9_table2);
    ("ablation-child-order", ablation_child_order);
    ("ablation-bestk", ablation_bestk);
    ("ablation-amalgamation", ablation_amalgamation);
    ("parallel", parallel_section);
    ("sched", sched_section);
    ("minio-gap", minio_gap);
    ("rounds", rounds);
    ("serve", serve_section);
    ("cluster", cluster_section);
    ("nemesis", nemesis_section);
    ("overload", overload_section);
    ("perf", perf_section);
    ("huge", huge_section);
    ("bechamel", bechamel_suite)
  ]

let default_order () =
  [ "theorem1"; "theorem2"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9";
    "ablation-child-order"; "ablation-bestk"; "ablation-amalgamation";
    "parallel"; "sched"; "minio-gap"; "rounds"; "serve"; "cluster"; "nemesis";
    "overload"
  ]
  @ (if !run_bechamel then [ "bechamel" ] else [])

let () =
  Arg.parse spec (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) usage;
  let t0 = Unix.gettimeofday () in
  (* sections run in the order requested and may repeat — a repeated
     engine section is served from the result cache *)
  let requested =
    match List.rev !sections with
    | [] -> default_order ()
    | l -> List.concat_map (fun s -> if s = "all" then default_order () else [ s ]) l
  in
  List.iter
    (fun name ->
      match List.assoc_opt name section_runners with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S (try --list)\n" name;
          exit 2)
    requested;
  if Lazy.is_val telemetry_sink then
    Option.iter Tt_engine.Telemetry.close (Lazy.force telemetry_sink);
  if Lazy.is_val journal_state then
    Option.iter
      (fun (j, _) -> Tt_engine.Journal.close j)
      (Lazy.force journal_state);
  (match !telemetry_path with
  | Some f -> Printf.printf "[engine] telemetry written to %s\n" f
  | None -> ());
  Printf.printf "\n[bench] total time %.1fs\n" (Unix.gettimeofday () -. t0)
