# Convenience targets; CI runs the same steps (see .github/workflows/ci.yml).

.PHONY: all build test check bench-smoke batch-smoke serve-smoke chaos clean

all: build

build:
	dune build @all

test:
	dune runtest

# The tier-1 gate plus a smoke run of the engine-backed bench and the
# batch subcommand. No ocamlformat config in this repo, so no fmt check.
check: build test batch-smoke serve-smoke
	dune exec bench/main.exe -- --section fig6 --jobs 2 --no-bechamel

batch-smoke:
	printf 'gen grid2d size=12 :: minmem; liu; minio policy=first-fit budget=50%%\n' > _batch_smoke.manifest
	dune exec bin/treetrav.exe -- batch _batch_smoke.manifest --jobs 2
	rm -f _batch_smoke.manifest

# End-to-end smoke of the network service: start a server on an
# ephemeral port, check that request/batch digests agree, drive it
# with a concurrent loadgen burst, then drain it gracefully. The built
# binary is run directly (not via `dune exec`) because the server must
# stay up while other treetrav invocations run.
serve-smoke: build
	printf 'gen grid2d size=16 :: minmem; liu; postorder\ngen banded size=48 :: minio policy=first-fit budget=50%%\n' > _serve_smoke.manifest
	_build/default/bin/treetrav.exe serve --port 0 --workers 2 > _serve_smoke.log 2>&1 & \
	  pid=$$!; \
	  for i in $$(seq 1 100); do grep -q '^listening on' _serve_smoke.log && break; sleep 0.1; done; \
	  port=$$(sed -n 's/^listening on [0-9.]*:\([0-9]*\).*/\1/p' _serve_smoke.log); \
	  test -n "$$port" || { echo "serve-smoke: server did not start"; kill $$pid; exit 1; }; \
	  _build/default/bin/treetrav.exe request --port $$port _serve_smoke.manifest | grep '^results digest' > _serve_smoke_req.digest; \
	  _build/default/bin/treetrav.exe batch _serve_smoke.manifest | grep '^results digest' > _serve_smoke_batch.digest; \
	  cmp _serve_smoke_req.digest _serve_smoke_batch.digest || { echo "serve-smoke: server and batch digests differ"; kill $$pid; exit 1; }; \
	  _build/default/bin/treetrav.exe loadgen --port $$port -c 2 -n 100 | tee _serve_smoke_load.out; \
	  grep -q '^errors: none' _serve_smoke_load.out || { echo "serve-smoke: loadgen saw errors"; kill $$pid; exit 1; }; \
	  _build/default/bin/treetrav.exe request --port $$port --op shutdown; \
	  wait $$pid; \
	  grep -q 'drained cleanly' _serve_smoke.log || { echo "serve-smoke: server did not drain"; exit 1; }
	rm -f _serve_smoke.manifest _serve_smoke.log _serve_smoke_req.digest _serve_smoke_batch.digest _serve_smoke_load.out
	@echo "serve-smoke: digests match, loadgen clean, drained gracefully"

# Chaos determinism gate: a fault-injected run with retries, and a
# journaled run resumed mid-way, must both reproduce the fault-free
# results digest bit for bit.
chaos: build
	printf 'gen grid2d size=16 :: minmem; liu; postorder\ngen grid2d size=16 :: minio policy=first-fit budget=50%%; minio policy=lsnf budget=50%%\ngen random size=60 seed=3 :: minmem; schedule procs=4 mem=1.5\n' > _chaos.manifest
	dune exec bin/treetrav.exe -- batch _chaos.manifest --jobs 2 | grep '^results digest' > _chaos_clean.digest
	dune exec bin/treetrav.exe -- batch _chaos.manifest --jobs 2 --faults crash=0.3,seed=7 --retries 3 | grep '^results digest' > _chaos_faulty.digest
	cmp _chaos_clean.digest _chaos_faulty.digest
	dune exec bin/treetrav.exe -- batch _chaos.manifest --journal _chaos.jnl > /dev/null
	head -4 _chaos.jnl > _chaos_torn.jnl && printf '{"id":"torn' >> _chaos_torn.jnl
	dune exec bin/treetrav.exe -- batch _chaos.manifest --resume _chaos_torn.jnl | grep '^results digest' > _chaos_resumed.digest
	cmp _chaos_clean.digest _chaos_resumed.digest
	rm -f _chaos.manifest _chaos_clean.digest _chaos_faulty.digest _chaos_resumed.digest _chaos.jnl _chaos_torn.jnl
	@echo "chaos: fault-injected and resumed digests match the fault-free run"

clean:
	dune clean
