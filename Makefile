# Convenience targets; CI runs the same steps (see .github/workflows/ci.yml).

.PHONY: all build test check bench-smoke batch-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

# The tier-1 gate plus a smoke run of the engine-backed bench and the
# batch subcommand. No ocamlformat config in this repo, so no fmt check.
check: build test batch-smoke
	dune exec bench/main.exe -- --section fig6 --jobs 2 --no-bechamel

batch-smoke:
	printf 'gen grid2d size=12 :: minmem; liu; minio policy=first-fit budget=50%%\n' > _batch_smoke.manifest
	dune exec bin/treetrav.exe -- batch _batch_smoke.manifest --jobs 2
	rm -f _batch_smoke.manifest

clean:
	dune clean
