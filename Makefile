# Convenience targets; CI runs the same steps (see .github/workflows/ci.yml).

.PHONY: all build test check bench-smoke batch-smoke chaos clean

all: build

build:
	dune build @all

test:
	dune runtest

# The tier-1 gate plus a smoke run of the engine-backed bench and the
# batch subcommand. No ocamlformat config in this repo, so no fmt check.
check: build test batch-smoke
	dune exec bench/main.exe -- --section fig6 --jobs 2 --no-bechamel

batch-smoke:
	printf 'gen grid2d size=12 :: minmem; liu; minio policy=first-fit budget=50%%\n' > _batch_smoke.manifest
	dune exec bin/treetrav.exe -- batch _batch_smoke.manifest --jobs 2
	rm -f _batch_smoke.manifest

# Chaos determinism gate: a fault-injected run with retries, and a
# journaled run resumed mid-way, must both reproduce the fault-free
# results digest bit for bit.
chaos: build
	printf 'gen grid2d size=16 :: minmem; liu; postorder\ngen grid2d size=16 :: minio policy=first-fit budget=50%%; minio policy=lsnf budget=50%%\ngen random size=60 seed=3 :: minmem; schedule procs=4 mem=1.5\n' > _chaos.manifest
	dune exec bin/treetrav.exe -- batch _chaos.manifest --jobs 2 | grep '^results digest' > _chaos_clean.digest
	dune exec bin/treetrav.exe -- batch _chaos.manifest --jobs 2 --faults crash=0.3,seed=7 --retries 3 | grep '^results digest' > _chaos_faulty.digest
	cmp _chaos_clean.digest _chaos_faulty.digest
	dune exec bin/treetrav.exe -- batch _chaos.manifest --journal _chaos.jnl > /dev/null
	head -4 _chaos.jnl > _chaos_torn.jnl && printf '{"id":"torn' >> _chaos_torn.jnl
	dune exec bin/treetrav.exe -- batch _chaos.manifest --resume _chaos_torn.jnl | grep '^results digest' > _chaos_resumed.digest
	cmp _chaos_clean.digest _chaos_resumed.digest
	rm -f _chaos.manifest _chaos_clean.digest _chaos_faulty.digest _chaos_resumed.digest _chaos.jnl _chaos_torn.jnl
	@echo "chaos: fault-injected and resumed digests match the fault-free run"

clean:
	dune clean
