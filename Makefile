# Convenience targets; CI runs the same steps (see .github/workflows/ci.yml).

.PHONY: all build test check bench-smoke batch-smoke serve-smoke perf-smoke sched-smoke chaos chaos-net chaos-cluster chaos-nemesis chaos-overload clean

all: build

build:
	dune build @all

test:
	dune runtest

# The tier-1 gate plus a smoke run of the engine-backed bench and the
# batch subcommand. No ocamlformat config in this repo, so no fmt check.
check: build test batch-smoke serve-smoke
	dune exec bench/main.exe -- --section fig6 --jobs 2 --no-bechamel

batch-smoke:
	printf 'gen grid2d size=12 :: minmem; liu; minio policy=first-fit budget=50%%\n' > _batch_smoke.manifest
	dune exec bin/treetrav.exe -- batch _batch_smoke.manifest --jobs 2
	rm -f _batch_smoke.manifest

# Quick seeded pass of the core-solver benchmark harness. Besides the
# timings, every row of BENCH_CORE.json carries a result digest, so two
# runs of this target on different revisions double as a behavioural
# regression check (compare the result_digest fields, not the times).
# The quick mode includes the huge-family rows at p = 1M; the kernel
# itself fails the run when a certified minmem-approx gap exceeds the
# pinned threshold, and `timeout` bounds the wall time so a scaling
# regression fails the gate instead of wedging CI.
perf-smoke: build
	timeout 600 dune exec bin/treetrav.exe -- perf --quick --out BENCH_CORE.json
	grep -q '"kernel": "huge/minmem-approx"' BENCH_CORE.json \
	  || { echo "perf-smoke: huge-family rows missing from BENCH_CORE.json"; exit 1; }

# Scheduling-tier smoke gate. The same par-schedule/pareto manifest
# must produce bit-identical results digests via direct batch (at two
# --jobs levels), the network server, and a 3-shard cluster — the jobs
# are pure functions of their content-addressed ids, so every serving
# path must agree. A seeded Pareto sweep must also reproduce its
# digest run to run.
sched-smoke: build
	printf 'gen grid2d size=16 :: par-schedule algo=booking procs=4 mem=1.0; par-schedule algo=greedy procs=4 mem=1.5; par-schedule algo=split procs=4 mem=2.0; pareto procs=4 steps=5\ngen banded size=48 :: pareto procs=2 steps=4; par-schedule procs=2\n' > _sched_smoke.manifest
	dune exec bin/treetrav.exe -- batch _sched_smoke.manifest --jobs 2 | grep '^results digest' > _ss_batch.digest
	dune exec bin/treetrav.exe -- batch _sched_smoke.manifest --jobs 1 | grep '^results digest' > _ss_batch2.digest
	cmp _ss_batch.digest _ss_batch2.digest || { echo "sched-smoke: batch digests differ across --jobs"; exit 1; }
	_build/default/bin/treetrav.exe serve --port 0 --workers 2 > _ss_serve.log 2>&1 & \
	  pid=$$!; \
	  for i in $$(seq 1 100); do grep -q '^listening on' _ss_serve.log && break; sleep 0.1; done; \
	  port=$$(sed -n 's/^listening on [0-9.]*:\([0-9]*\).*/\1/p' _ss_serve.log); \
	  test -n "$$port" || { echo "sched-smoke: server did not start"; kill $$pid; exit 1; }; \
	  _build/default/bin/treetrav.exe request --port $$port _sched_smoke.manifest | grep '^results digest' > _ss_serve.digest; \
	  _build/default/bin/treetrav.exe request --port $$port --op shutdown; \
	  wait $$pid
	cmp _ss_batch.digest _ss_serve.digest || { echo "sched-smoke: serve digest diverged from batch"; exit 1; }
	_build/default/bin/treetrav.exe cluster --shards 3 --workers 2 > _ss_cluster.log 2>&1 & \
	  pid=$$!; \
	  for i in $$(seq 1 100); do grep -q 'behind router' _ss_cluster.log && break; sleep 0.1; done; \
	  port=$$(sed -n 's/.*behind router 127.0.0.1:\([0-9]*\).*/\1/p' _ss_cluster.log); \
	  test -n "$$port" || { echo "sched-smoke: cluster did not start"; kill $$pid; exit 1; }; \
	  _build/default/bin/treetrav.exe request --port $$port _sched_smoke.manifest | grep '^results digest' > _ss_cluster.digest; \
	  _build/default/bin/treetrav.exe request --port $$port --op shutdown; \
	  wait $$pid
	cmp _ss_batch.digest _ss_cluster.digest || { echo "sched-smoke: cluster digest diverged from batch"; exit 1; }
	dune exec bin/treetrav.exe -- sched --kind grid2d --size 16 --procs 4 --steps 5 | grep '^pareto digest' > _ss_pareto_a.digest
	dune exec bin/treetrav.exe -- sched --kind grid2d --size 16 --procs 4 --steps 5 | grep '^pareto digest' > _ss_pareto_b.digest
	cmp _ss_pareto_a.digest _ss_pareto_b.digest || { echo "sched-smoke: pareto sweep is not deterministic"; exit 1; }
	rm -f _sched_smoke.manifest _ss_batch.digest _ss_batch2.digest _ss_serve.log _ss_serve.digest \
	  _ss_cluster.log _ss_cluster.digest _ss_pareto_a.digest _ss_pareto_b.digest
	@echo "sched-smoke: batch/serve/cluster digest parity and a reproducible pareto sweep"

# End-to-end smoke of the network service: start a server on an
# ephemeral port, check that request/batch digests agree, drive it
# with a concurrent loadgen burst, then drain it gracefully. The built
# binary is run directly (not via `dune exec`) because the server must
# stay up while other treetrav invocations run.
serve-smoke: build
	printf 'gen grid2d size=16 :: minmem; liu; postorder\ngen banded size=48 :: minio policy=first-fit budget=50%%\n' > _serve_smoke.manifest
	_build/default/bin/treetrav.exe serve --port 0 --workers 2 > _serve_smoke.log 2>&1 & \
	  pid=$$!; \
	  for i in $$(seq 1 100); do grep -q '^listening on' _serve_smoke.log && break; sleep 0.1; done; \
	  port=$$(sed -n 's/^listening on [0-9.]*:\([0-9]*\).*/\1/p' _serve_smoke.log); \
	  test -n "$$port" || { echo "serve-smoke: server did not start"; kill $$pid; exit 1; }; \
	  _build/default/bin/treetrav.exe request --port $$port _serve_smoke.manifest | grep '^results digest' > _serve_smoke_req.digest; \
	  _build/default/bin/treetrav.exe batch _serve_smoke.manifest | grep '^results digest' > _serve_smoke_batch.digest; \
	  cmp _serve_smoke_req.digest _serve_smoke_batch.digest || { echo "serve-smoke: server and batch digests differ"; kill $$pid; exit 1; }; \
	  _build/default/bin/treetrav.exe loadgen --port $$port -c 2 -n 100 | tee _serve_smoke_load.out; \
	  grep -q '^errors: none' _serve_smoke_load.out || { echo "serve-smoke: loadgen saw errors"; kill $$pid; exit 1; }; \
	  _build/default/bin/treetrav.exe request --port $$port --op shutdown; \
	  wait $$pid; \
	  grep -q 'drained cleanly' _serve_smoke.log || { echo "serve-smoke: server did not drain"; exit 1; }
	rm -f _serve_smoke.manifest _serve_smoke.log _serve_smoke_req.digest _serve_smoke_batch.digest _serve_smoke_load.out
	@echo "serve-smoke: digests match, loadgen clean, drained gracefully"

# Chaos determinism gate: a fault-injected run with retries, and a
# journaled run resumed mid-way, must both reproduce the fault-free
# results digest bit for bit.
chaos: build
	printf 'gen grid2d size=16 :: minmem; liu; postorder\ngen grid2d size=16 :: minio policy=first-fit budget=50%%; minio policy=lsnf budget=50%%\ngen random size=60 seed=3 :: minmem; schedule procs=4 mem=1.5\n' > _chaos.manifest
	dune exec bin/treetrav.exe -- batch _chaos.manifest --jobs 2 | grep '^results digest' > _chaos_clean.digest
	dune exec bin/treetrav.exe -- batch _chaos.manifest --jobs 2 --faults crash=0.3,seed=7 --retries 3 | grep '^results digest' > _chaos_faulty.digest
	cmp _chaos_clean.digest _chaos_faulty.digest
	dune exec bin/treetrav.exe -- batch _chaos.manifest --journal _chaos.jnl > /dev/null
	head -4 _chaos.jnl > _chaos_torn.jnl && printf '{"id":"torn' >> _chaos_torn.jnl
	dune exec bin/treetrav.exe -- batch _chaos.manifest --resume _chaos_torn.jnl | grep '^results digest' > _chaos_resumed.digest
	cmp _chaos_clean.digest _chaos_resumed.digest
	rm -f _chaos.manifest _chaos_clean.digest _chaos_faulty.digest _chaos_resumed.digest _chaos.jnl _chaos_torn.jnl
	@echo "chaos: fault-injected and resumed digests match the fault-free run"

# Network chaos gate. Run 1: clean server, direct loadgen. Run 2: a
# crash-injecting server behind the netfault proxy (drops, truncation,
# stalls, tiny-write splits), same seed, retries + idempotency keys.
# Both runs must converge to the same order-insensitive value digest,
# run 2 must force at least one worker restart, and both servers must
# drain with zero active connections. The load runs are wrapped in
# `timeout` so a hung connection fails the gate instead of wedging CI.
chaos-net: build
	_build/default/bin/treetrav.exe serve --port 0 --workers 2 > _chaos_net_clean.log 2>&1 & \
	  pid=$$!; \
	  for i in $$(seq 1 100); do grep -q '^listening on' _chaos_net_clean.log && break; sleep 0.1; done; \
	  port=$$(sed -n 's/^listening on [0-9.]*:\([0-9]*\).*/\1/p' _chaos_net_clean.log); \
	  test -n "$$port" || { echo "chaos-net: clean server did not start"; kill $$pid; exit 1; }; \
	  timeout 120 _build/default/bin/treetrav.exe loadgen --port $$port -c 2 -n 80 --seed 11 --mix all --tag lgclean > _chaos_net_clean.out \
	    || { echo "chaos-net: clean loadgen failed"; kill $$pid; exit 1; }; \
	  grep -q '^errors: none' _chaos_net_clean.out || { echo "chaos-net: clean run saw errors"; kill $$pid; exit 1; }; \
	  _build/default/bin/treetrav.exe request --port $$port --op shutdown; \
	  wait $$pid; \
	  grep -q 'drained cleanly' _chaos_net_clean.log || { echo "chaos-net: clean server did not drain"; exit 1; }
	grep '^value digest' _chaos_net_clean.out > _chaos_net_clean.digest
	_build/default/bin/treetrav.exe serve --port 0 --workers 2 --worker-faults crash=0.15,seed=5 > _chaos_net_chaos.log 2>&1 & \
	  pid=$$!; \
	  for i in $$(seq 1 100); do grep -q '^listening on' _chaos_net_chaos.log && break; sleep 0.1; done; \
	  port=$$(sed -n 's/^listening on [0-9.]*:\([0-9]*\).*/\1/p' _chaos_net_chaos.log); \
	  test -n "$$port" || { echo "chaos-net: chaos server did not start"; kill $$pid; exit 1; }; \
	  timeout 180 _build/default/bin/treetrav.exe loadgen --port $$port -c 2 -n 80 --seed 11 --mix all --tag lgchaos \
	    --retries 6 --read-timeout 5 --chaos 'drop=0.05,trunc=0.03,stall=0.1,split=0.3,max-stall=0.02,seed=9' \
	    > _chaos_net_chaos.out \
	    || { echo "chaos-net: chaos loadgen failed"; kill $$pid; exit 1; }; \
	  grep -q '^errors: none' _chaos_net_chaos.out || { echo "chaos-net: chaos run lost requests"; kill $$pid; exit 1; }; \
	  grep -q '^chaos proxy' _chaos_net_chaos.out || { echo "chaos-net: proxy stats missing"; kill $$pid; exit 1; }; \
	  _build/default/bin/treetrav.exe request --port $$port --op shutdown; \
	  wait $$pid; \
	  grep -q 'drained cleanly' _chaos_net_chaos.log || { echo "chaos-net: chaos server did not drain"; exit 1; }
	grep '^value digest' _chaos_net_chaos.out > _chaos_net_chaos.digest
	cmp _chaos_net_clean.digest _chaos_net_chaos.digest \
	  || { echo "chaos-net: value digests diverged under network faults"; exit 1; }
	grep -Eq '^tt_server_worker_restarts_total [1-9]' _chaos_net_chaos.log \
	  || { echo "chaos-net: no worker restart was forced"; exit 1; }
	grep -q '^tt_server_connections_active 0$$' _chaos_net_clean.log || { echo "chaos-net: clean server leaked connections"; exit 1; }
	grep -q '^tt_server_connections_active 0$$' _chaos_net_chaos.log || { echo "chaos-net: chaos server leaked connections"; exit 1; }
	rm -f _chaos_net_clean.log _chaos_net_clean.out _chaos_net_clean.digest \
	  _chaos_net_chaos.log _chaos_net_chaos.out _chaos_net_chaos.digest
	@echo "chaos-net: digest parity under faults, >=1 worker restart survived, no leaked connections"

# Shard-tier chaos gate. Run 1: one plain server, direct loadgen —
# the reference value digest. Run 2: a 3-shard cluster whose watchdog
# gracefully kills shard 1 after 20 routed ops, driven through the
# netfault proxy with the same seed. Routing is content-addressed and
# jobs are deterministic, so the cluster must converge to the exact
# single-node digest with zero lost admitted requests, and the kill
# must force at least one failover. `timeout` keeps a wedged run from
# hanging CI.
chaos-cluster: build
	_build/default/bin/treetrav.exe serve --port 0 --workers 2 > _cc_single.log 2>&1 & \
	  pid=$$!; \
	  for i in $$(seq 1 100); do grep -q '^listening on' _cc_single.log && break; sleep 0.1; done; \
	  port=$$(sed -n 's/^listening on [0-9.]*:\([0-9]*\).*/\1/p' _cc_single.log); \
	  test -n "$$port" || { echo "chaos-cluster: single server did not start"; kill $$pid; exit 1; }; \
	  timeout 120 _build/default/bin/treetrav.exe loadgen --port $$port -c 2 -n 80 --seed 11 --mix all --tag ccsingle > _cc_single.out \
	    || { echo "chaos-cluster: single-node loadgen failed"; kill $$pid; exit 1; }; \
	  grep -q '^errors: none' _cc_single.out || { echo "chaos-cluster: single-node run saw errors"; kill $$pid; exit 1; }; \
	  _build/default/bin/treetrav.exe request --port $$port --op shutdown; \
	  wait $$pid
	grep '^value digest' _cc_single.out > _cc_single.digest
	_build/default/bin/treetrav.exe cluster --shards 3 --workers 2 --kill-shard 1 --kill-after-requests 20 > _cc_cluster.log 2>&1 & \
	  pid=$$!; \
	  for i in $$(seq 1 100); do grep -q 'behind router' _cc_cluster.log && break; sleep 0.1; done; \
	  port=$$(sed -n 's/.*behind router 127.0.0.1:\([0-9]*\).*/\1/p' _cc_cluster.log); \
	  test -n "$$port" || { echo "chaos-cluster: cluster did not start"; kill $$pid; exit 1; }; \
	  timeout 180 _build/default/bin/treetrav.exe loadgen --port $$port -c 2 -n 80 --seed 11 --mix all --tag cccluster \
	    --retries 6 --read-timeout 5 --connect-timeout 2 \
	    --chaos 'drop=0.05,trunc=0.03,stall=0.1,split=0.3,max-stall=0.02,seed=9' \
	    > _cc_cluster.out \
	    || { echo "chaos-cluster: cluster loadgen failed"; kill $$pid; exit 1; }; \
	  grep -q '^errors: none' _cc_cluster.out || { echo "chaos-cluster: cluster run lost admitted requests"; kill $$pid; exit 1; }; \
	  _build/default/bin/treetrav.exe request --port $$port --op shutdown; \
	  wait $$pid; \
	  grep -q 'cluster drained cleanly' _cc_cluster.log || { echo "chaos-cluster: cluster did not drain"; exit 1; }
	grep '^value digest' _cc_cluster.out > _cc_cluster.digest
	cmp _cc_single.digest _cc_cluster.digest \
	  || { echo "chaos-cluster: cluster digest diverged from the single-node run"; exit 1; }
	grep -Eq '^tt_shard_failovers_total [1-9]' _cc_cluster.log \
	  || { echo "chaos-cluster: shard kill forced no failover"; exit 1; }
	grep -q '^tt_shard_unrouted_total 0$$' _cc_cluster.log \
	  || { echo "chaos-cluster: some requests exhausted the ring"; exit 1; }
	rm -f _cc_single.log _cc_single.out _cc_single.digest \
	  _cc_cluster.log _cc_cluster.out _cc_cluster.digest
	@echo "chaos-cluster: digest parity across 1 node vs 3 shards with a mid-run kill, >=1 failover, zero lost requests"

# Self-healing gate. First the determinism contract: the nemesis
# schedule is a pure function of the seed, so two --plan-only runs
# must be byte-identical. Then the full run: a seeded
# kill/stall/partition/join/leave schedule against a supervised
# 3-shard cluster under retrying load must converge to the clean
# single-node value digest with >=1 supervised restart, >=1 breaker
# open->close cycle, >=1 ring membership change, zero admitted
# requests lost or contradicted, and full recovery within the
# quiescence bound — all asserted by the subcommand's own exit code.
# Overload chaos gate. The seeded overload nemesis drives a 3-shard
# proxied cluster at 4x its measured capacity with one shard stalled
# mid-connection, then checks its own invariants: zero untyped losses,
# every ok within deadline, typed sheds only, batch browns out first,
# interactive goodput holds the floor, >= 1 hedge won, and the
# completed subset matches a pristine re-solve. Run twice: the
# `overload-summary` lines (config, invariant verdicts, full-set
# oracle digest) must match byte-for-byte.
chaos-overload: build
	timeout 300 _build/default/bin/treetrav.exe overload --seed 17 > _ov_run_a.out 2>&1 \
	  || { cat _ov_run_a.out; echo "chaos-overload: run A failed"; exit 1; }
	cat _ov_run_a.out
	timeout 300 _build/default/bin/treetrav.exe overload --seed 17 > _ov_run_b.out 2>&1 \
	  || { cat _ov_run_b.out; echo "chaos-overload: run B failed"; exit 1; }
	grep '^overload-summary' _ov_run_a.out > _ov_sum_a.txt
	grep '^overload-summary' _ov_run_b.out > _ov_sum_b.txt
	cmp _ov_sum_a.txt _ov_sum_b.txt \
	  || { echo "chaos-overload: summaries differ between identical seeded runs"; exit 1; }
	rm -f _ov_run_a.out _ov_run_b.out _ov_sum_a.txt _ov_sum_b.txt
	@echo "chaos-overload: deterministic verdicts; typed sheds, deadline-clean oks, brownout ordering, hedge win, oracle digest parity"

chaos-nemesis: build
	_build/default/bin/treetrav.exe nemesis --plan-only --seed 11 --steps 8 > _nx_plan_a.txt
	_build/default/bin/treetrav.exe nemesis --plan-only --seed 11 --steps 8 > _nx_plan_b.txt
	cmp _nx_plan_a.txt _nx_plan_b.txt \
	  || { echo "chaos-nemesis: same seed produced different schedules"; exit 1; }
	timeout 300 _build/default/bin/treetrav.exe nemesis --seed 11 > _nx_run.out 2>&1 \
	  || { cat _nx_run.out; echo "chaos-nemesis: nemesis run failed"; exit 1; }
	cat _nx_run.out
	grep -q '^nemesis invariants hold' _nx_run.out \
	  || { echo "chaos-nemesis: invariants line missing"; exit 1; }
	rm -f _nx_plan_a.txt _nx_plan_b.txt _nx_run.out
	@echo "chaos-nemesis: deterministic schedule; digest parity, supervised restart, breaker cycle, ring change, zero lost admitted requests"

clean:
	dune clean
