(* Supernodal factorization: the paper's amalgamated assembly trees are
   not only a scheduling model -- they drive a real supernodal solver
   here. This example factors one matrix at several amalgamation levels
   and shows the memory/granularity trade-off, checking the tree-model
   prediction against the measured words each time.

     dune exec examples/supernodal_demo.exe *)

module S = Tt_sparse

let () =
  let a = S.Spgen.grid2d 18 in
  let pattern = S.Csr.symmetrize_pattern a in
  let perm = Tt_ordering.Min_degree.order (Tt_ordering.Graph_adj.of_pattern pattern) in
  let a = S.Csr.permute_sym a perm in
  let pattern = S.Csr.symmetrize_pattern a in
  let parent = Tt_etree.Elimination_tree.parents pattern in
  let sym = Tt_etree.Symbolic.run pattern ~parent in
  let n = pattern.S.Csr.nrows in
  let cc = Array.init n (Tt_etree.Symbolic.col_count sym) in
  Format.printf "matrix: n = %d, nnz(L) = %d@.@." n (Tt_etree.Symbolic.nnz_l sym);
  Format.printf "%-6s %10s %12s %12s %12s %10s@." "amalg" "supernodes"
    "model peak" "measured" "max front" "residual";
  List.iter
    (fun limit ->
      let amal = Tt_etree.Amalgamation.run ~parent ~col_counts:cc ~limit in
      let plan = Tt_multifrontal.Supernodal.plan sym amal in
      let schedule = Tt_multifrontal.Supernodal.default_schedule plan in
      let r = Tt_multifrontal.Supernodal.run a sym plan ~schedule in
      (* the tree-model prediction for the same (reversed) schedule *)
      let asm = Tt_etree.Assembly.of_amalgamation amal in
      let tree = asm.Tt_etree.Assembly.tree in
      let p = Tt_core.Tree.size tree in
      let g = Array.length amal.Tt_etree.Amalgamation.groups in
      let order =
        if asm.Tt_etree.Assembly.virtual_root then
          Array.init p (fun k -> if k = 0 then p - 1 else schedule.(g - k))
        else Tt_core.Transform.reverse_traversal schedule
      in
      let model = Tt_core.Traversal.peak tree order in
      let max_front = ref 0 in
      for gi = 0 to g - 1 do
        max_front := max !max_front (Tt_multifrontal.Supernodal.front_words plan gi)
      done;
      Format.printf "%-6d %10d %12d %12d %12d %10.1e@." limit g model
        r.Tt_multifrontal.Factor.peak_words !max_front
        (Tt_multifrontal.Factor.residual_norm a r.Tt_multifrontal.Factor.l))
    [ 1; 2; 4; 8; 16; 32 ];
  Format.printf
    "@.More amalgamation -> fewer, larger fronts and a higher peak: the model@.\
     column always equals the measured column, because the paper's weights@.\
     (n = eta^2 + 2 eta (mu-1), f = (mu-1)^2) are exactly the supernodal@.\
     front and contribution-block sizes.@."
