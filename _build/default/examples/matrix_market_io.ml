(* Matrix Market interoperability: export a generated matrix, read it
   back with the hand-written parser, and analyze an arbitrary .mtx file
   from the command line the way the paper analyzes the UF collection.

     dune exec examples/matrix_market_io.exe -- [file.mtx] *)

module S = Tt_sparse

let analyze name a =
  let pattern = S.Csr.symmetrize_pattern a in
  let perm = Tt_ordering.Min_degree.order (Tt_ordering.Graph_adj.of_pattern pattern) in
  let b = S.Csr.permute_sym pattern perm in
  let parent = Tt_etree.Elimination_tree.parents b in
  let col_counts = Tt_etree.Col_counts.counts b ~parent in
  Format.printf "%s: n = %d, nnz(pattern) = %d, nnz(L) = %d@." name a.S.Csr.nrows
    (S.Csr.nnz pattern)
    (Array.fold_left ( + ) 0 col_counts);
  List.iter
    (fun limit ->
      let am = Tt_etree.Amalgamation.run ~parent ~col_counts ~limit in
      let asm = Tt_etree.Assembly.of_amalgamation am in
      let tree = asm.Tt_etree.Assembly.tree in
      let po = Tt_core.Postorder_opt.best_memory tree in
      let opt = Tt_core.Minmem.min_memory tree in
      Format.printf
        "  amalgamation %2d: %5d tree nodes; postorder memory %10d, optimal %10d (%s)@."
        limit (Tt_core.Tree.size tree) po opt
        (if po = opt then "postorder optimal" else Printf.sprintf "+%.1f%%"
           (100. *. (float_of_int po /. float_of_int opt -. 1.))))
    [ 1; 4; 16 ]

let () =
  if Array.length Sys.argv > 1 then begin
    (* user-supplied Matrix Market file *)
    let _header, t = S.Matrix_market.read_file Sys.argv.(1) in
    analyze Sys.argv.(1) (S.Csr.of_triplet t)
  end
  else begin
    (* round trip a generated matrix through the MM format *)
    let a = S.Spgen.grid2d_9pt 14 in
    let path = Filename.temp_file "treetrav" ".mtx" in
    S.Matrix_market.write_file ~symmetry:S.Matrix_market.Symmetric path a;
    Format.printf "wrote %s (coordinate real symmetric)@." path;
    let header, t = S.Matrix_market.read_file path in
    Format.printf "read back: %d x %d, %d stored entries, field %s@." header.S.Matrix_market.nrows
      header.S.Matrix_market.ncols header.S.Matrix_market.nnz
      (match header.S.Matrix_market.field with
      | S.Matrix_market.Real -> "real"
      | S.Matrix_market.Integer -> "integer"
      | S.Matrix_market.Complex -> "complex"
      | S.Matrix_market.Pattern -> "pattern");
    let b = S.Csr.of_triplet t in
    assert (S.Csr.equal_pattern a b);
    Format.printf "round trip: pattern identical@.";
    analyze "grid9-14" b;
    Sys.remove path
  end
