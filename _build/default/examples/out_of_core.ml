(* Out-of-core factorization: when the frontal working set does not fit
   in memory, contribution blocks are evicted to secondary storage. This
   example plans the evictions with each of the paper's six heuristics
   and actually executes the factorization within the budget, reporting
   the I/O volume (words written).

     dune exec examples/out_of_core.exe *)

module S = Tt_sparse

let () =
  let a =
    S.Spgen.random_sym ~rng:(Tt_util.Rng.create 2024) ~n:420 ~nnz_per_row:3.0
  in
  let pattern = S.Csr.symmetrize_pattern a in
  let perm = Tt_ordering.Nested_dissection.order (Tt_ordering.Graph_adj.of_pattern pattern) in
  let a = S.Csr.permute_sym a perm in
  let pattern = S.Csr.symmetrize_pattern a in
  let parent = Tt_etree.Elimination_tree.parents pattern in
  let sym = Tt_etree.Symbolic.run pattern ~parent in
  let schedule = Tt_multifrontal.Factor.default_schedule sym in

  (* the in-core footprint of this schedule, and the hard lower bound *)
  let full = Tt_multifrontal.Factor.run a sym ~schedule in
  let in_core = full.Tt_multifrontal.Factor.peak_words in
  let floor = Tt_multifrontal.Ooc_sim.min_in_core_words sym in
  Format.printf "in-core peak: %d words; multifrontal working-set floor: %d words@.@."
    in_core floor;

  let budgets =
    List.map (fun frac ->
        floor + int_of_float (frac *. float_of_int (in_core - floor)))
      [ 0.0; 0.1; 0.3; 0.6 ]
  in
  Format.printf "%-14s" "policy";
  List.iter (fun m -> Format.printf "  M=%-8d" m) budgets;
  Format.printf "@.";
  List.iter
    (fun (name, policy) ->
      Format.printf "%-14s" name;
      List.iter
        (fun memory_words ->
          match
            Tt_multifrontal.Ooc_sim.run a sym ~memory_words ~policy ~schedule
          with
          | Ok r ->
              assert (r.Tt_multifrontal.Ooc_sim.planned_io
                      = r.Tt_multifrontal.Ooc_sim.measured_io);
              Format.printf "  %-10d" r.Tt_multifrontal.Ooc_sim.measured_io
          | Error _ -> Format.printf "  %-10s" "infeasible")
        budgets;
      Format.printf "@.")
    Tt_core.Minio.all_policies;
  Format.printf
    "@.(each cell: words of contribution blocks written to secondary storage;@.\
     \ the numeric factor is identical in all runs)@."
