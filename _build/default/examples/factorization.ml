(* The full multifrontal pipeline, end to end: generate a 2D Laplacian,
   reorder it, build the elimination and assembly trees, choose a
   memory-minimizing schedule, and run the *numeric* Cholesky
   factorization, comparing the measured memory with the tree model's
   prediction.

     dune exec examples/factorization.exe *)

module S = Tt_sparse

let () =
  let k = 20 in
  let a = S.Spgen.grid2d k in
  let n = a.S.Csr.nrows in
  Format.printf "matrix: %dx%d grid Laplacian, n = %d, nnz = %d@." k k n (S.Csr.nnz a);

  (* fill-reducing ordering *)
  let pattern = S.Csr.symmetrize_pattern a in
  let perm = Tt_ordering.Min_degree.order (Tt_ordering.Graph_adj.of_pattern pattern) in
  let a = S.Csr.permute_sym a perm in
  let pattern = S.Csr.symmetrize_pattern a in

  (* symbolic analysis *)
  let parent = Tt_etree.Elimination_tree.parents pattern in
  let sym = Tt_etree.Symbolic.run pattern ~parent in
  Format.printf "after minimum degree: nnz(L) = %d@." (Tt_etree.Symbolic.nnz_l sym);

  (* the assembly tree seen by the scheduling algorithms *)
  let col_counts = Array.init n (Tt_etree.Symbolic.col_count sym) in
  let asm = Tt_etree.Assembly.of_etree_raw ~parent ~col_counts in
  let tree = asm.Tt_etree.Assembly.tree in

  (* two schedules: the classic best postorder and the optimal MinMem
     traversal; both are top-down out-tree orders, so the multifrontal
     (bottom-up) schedule is the reverse *)
  let po_mem, po_order = Tt_core.Postorder_opt.run tree in
  let mm_mem, mm_order = Tt_core.Minmem.run tree in
  Format.printf "tree model: best postorder needs %d words, optimal %d words@." po_mem
    mm_mem;

  let to_schedule order =
    let rev = Tt_core.Transform.reverse_traversal order in
    (* drop the virtual root if the forest needed one *)
    if asm.Tt_etree.Assembly.virtual_root then
      Array.of_list (List.filter (fun x -> x < n) (Array.to_list rev))
    else rev
  in
  List.iter
    (fun (name, order) ->
      let schedule = to_schedule order in
      let r = Tt_multifrontal.Factor.run a sym ~schedule in
      Format.printf "%-10s measured peak: %d words of frontal/contribution storage@."
        name r.Tt_multifrontal.Factor.peak_words)
    [ ("PostOrder", po_order); ("MinMem", mm_order) ];

  (* numeric check: solve a system and look at the error *)
  let schedule = to_schedule mm_order in
  let r = Tt_multifrontal.Factor.run a sym ~schedule in
  let x0 = Array.init n (fun i -> sin (float_of_int i)) in
  let b = S.Csr.mul_vec a x0 in
  let x = Tt_multifrontal.Factor.solve r.Tt_multifrontal.Factor.l b in
  let err =
    Array.fold_left max 0. (Array.mapi (fun i v -> Float.abs (v -. x0.(i))) x)
  in
  Format.printf "numeric solve max error: %.2e@." err
