(* Visualization: write a Graphviz rendering of an assembly tree and
   compare the memory profiles of the best postorder and the optimal
   traversal as ASCII charts.

     dune exec examples/visualize.exe -- [out.dot] *)

module T = Tt_core.Tree

let profile_curve name tree order =
  let prof = Tt_core.Traversal.profile tree order in
  { Tt_profile.Perf_profile.name;
    points =
      Array.mapi (fun k usage -> (float_of_int (k + 1), float_of_int usage)) prof
  }

let () =
  let tree = Tt_core.Instances.harpoon_nested ~branches:3 ~levels:2 ~m:60 ~eps:2 in
  Format.printf "tree: %d nodes, height %d@." (T.size tree) (T.height tree);

  (* Graphviz output *)
  let dot = T.to_dot tree in
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else
      Filename.concat (Filename.get_temp_dir_name ()) "treetrav.dot" in
  let oc = open_out path in
  output_string oc dot;
  close_out oc;
  Format.printf "wrote %s (render with: dot -Tpng %s -o tree.png)@.@." path path;

  (* memory profiles over time: the x axis is the execution step, the y
     axis is normalized memory (the plot renderer shows fractions) *)
  let po_mem, po_order = Tt_core.Postorder_opt.run tree in
  let mm_mem, mm_order = Tt_core.Minmem.run tree in
  Format.printf "postorder needs %d, optimal %d (ratio %.2f)@." po_mem mm_mem
    (float_of_int po_mem /. float_of_int mm_mem);
  let norm (c : Tt_profile.Perf_profile.curve) =
    let top = Array.fold_left (fun acc (_, y) -> Float.max acc y) 1. c.points in
    { c with points = Array.map (fun (x, y) -> (x, y /. top)) c.points }
  in
  let curves =
    List.map norm
      [ profile_curve "PostOrder" tree po_order; profile_curve "MinMem" tree mm_order ]
  in
  print_string
    (Tt_profile.Ascii_plot.render ~width:72 ~height:14
       ~title:
         (Printf.sprintf
            "memory over time (fraction of the postorder peak %d; x = step, log scale)"
            po_mem)
       curves)
