(* Quickstart: build a small tree workflow by hand, ask the three
   MinMemory algorithms for traversals, and check them with the
   Algorithm-1 simulator.

     dune exec examples/quickstart.exe *)

module T = Tt_core.Tree

let () =
  (* The harpoon of the paper's Figure 3(a) with 3 branches, M = 30,
     eps = 1: the tree where postorder provably loses. Each node i has an
     input file f.(i) (produced by its parent) and an execution file
     n.(i). *)
  let tree = Tt_core.Instances.harpoon ~branches:3 ~m:30 ~eps:1 in
  Format.printf "The tree (node [f=input file, n=execution file]):@.%a@." T.pp tree;

  (* 1. the best postorder traversal (Liu 1986) *)
  let po_mem, po_order = Tt_core.Postorder_opt.run tree in
  (* 2. Liu's exact algorithm (1987), via hill-valley segments *)
  let liu_mem, liu_order = Tt_core.Liu_exact.run tree in
  (* 3. the paper's MinMem exact algorithm (Algorithms 3 and 4) *)
  let mm_mem, mm_order = Tt_core.Minmem.run tree in

  let show name mem order =
    Format.printf "%-10s needs %2d words; traversal: %s@." name mem
      (String.concat " " (Array.to_list (Array.map string_of_int order)))
  in
  show "PostOrder" po_mem po_order;
  show "Liu" liu_mem liu_order;
  show "MinMem" mm_mem mm_order;

  (* verify the claims with the checker of Algorithm 1 *)
  List.iter
    (fun (name, mem, order) ->
      match Tt_core.Traversal.check tree ~memory:mem order with
      | Tt_core.Traversal.Feasible peak ->
          Format.printf "%-10s verified: feasible with %d words (peak %d)@." name mem
            peak
      | Tt_core.Traversal.Infeasible_at { step; needed; available } ->
          Format.printf "%-10s BROKEN at step %d: needs %d, has %d@." name step needed
            available
      | Tt_core.Traversal.Invalid_order { reason; _ } ->
          Format.printf "%-10s INVALID: %s@." name reason)
    [ ("PostOrder", po_mem, po_order);
      ("Liu", liu_mem, liu_order);
      ("MinMem", mm_mem, mm_order)
    ];

  (* and show that the postorder cannot do better: one word less fails *)
  (match Tt_core.Traversal.check tree ~memory:(po_mem - 1) po_order with
  | Tt_core.Traversal.Infeasible_at { step; _ } ->
      Format.printf
        "with %d words the postorder traversal runs out of memory at step %d@."
        (po_mem - 1) step
  | _ -> Format.printf "unexpected: postorder feasible below its peak?!@.");
  Format.printf
    "@.The optimal traversal alternates between branches (ratio %.2f vs postorder).@."
    (float_of_int po_mem /. float_of_int mm_mem)
