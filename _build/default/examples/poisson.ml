(* A small application: solve the discrete Poisson problem -Δu = f on a
   2D grid with the memory-aware multifrontal solver, out of core under a
   tight budget, and cross-validate the solution against conjugate
   gradients — two entirely different algorithms on the same system.

     dune exec examples/poisson.exe -- [grid size] *)

module S = Tt_sparse

let () =
  let k = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 24 in
  let a = S.Spgen.grid2d k in
  let n = a.S.Csr.nrows in
  (* a smooth right-hand side *)
  let f =
    Array.init n (fun idx ->
        let x = idx / k and y = idx mod k in
        sin (3.0 *. float_of_int x /. float_of_int k)
        *. cos (2.0 *. float_of_int y /. float_of_int k))
  in
  Format.printf "Poisson on a %dx%d grid (n = %d)@." k k n;

  (* symbolic analysis with minimum degree *)
  let pattern = S.Csr.symmetrize_pattern a in
  let perm = Tt_ordering.Min_degree.order (Tt_ordering.Graph_adj.of_pattern pattern) in
  let ap = S.Csr.permute_sym a perm in
  let patternp = S.Csr.symmetrize_pattern ap in
  let parent = Tt_etree.Elimination_tree.parents patternp in
  let sym = Tt_etree.Symbolic.run patternp ~parent in
  Format.printf "after mindeg: nnz(L) = %d, ~%d flops@."
    (Tt_etree.Symbolic.nnz_l sym)
    (Tt_etree.Symbolic.factorization_flops sym);

  (* permuted right-hand side *)
  let fp = Array.map (fun oldi -> f.(oldi)) perm in

  (* direct solve, out of core at 70% of the in-core peak *)
  let schedule = Tt_multifrontal.Factor.default_schedule sym in
  let full = Tt_multifrontal.Factor.run ap sym ~schedule in
  let budget =
    let floor = Tt_multifrontal.Ooc_sim.min_in_core_words sym in
    floor + (7 * (full.Tt_multifrontal.Factor.peak_words - floor) / 10)
  in
  let direct =
    match
      Tt_multifrontal.Ooc_sim.run ap sym ~memory_words:budget
        ~policy:Tt_core.Minio.First_fit ~schedule
    with
    | Ok r ->
        Format.printf
          "direct: factored within %d words (in-core peak %d), %d words of I/O@."
          budget full.Tt_multifrontal.Factor.peak_words
          r.Tt_multifrontal.Ooc_sim.measured_io;
        Tt_multifrontal.Factor.solve r.Tt_multifrontal.Ooc_sim.factor.Tt_multifrontal.Factor.l fp
    | Error e -> failwith e
  in

  (* independent check: conjugate gradients on the original system *)
  let cgr = S.Iterative.cg ~tol:1e-12 a f in
  Format.printf "cg: %d iterations, residual %.2e, converged: %b@."
    cgr.S.Iterative.iterations cgr.S.Iterative.residual cgr.S.Iterative.converged;

  (* compare (un-permute the direct solution) *)
  let xdirect = Array.make n 0. in
  Array.iteri (fun newi oldi -> xdirect.(oldi) <- direct.(newi)) perm;
  let worst = ref 0. in
  Array.iteri
    (fun i v -> worst := Float.max !worst (Float.abs (v -. cgr.S.Iterative.x.(i))))
    xdirect;
  Format.printf "max |direct - cg| = %.2e  %s@." !worst
    (if !worst < 1e-6 then "(the two solvers agree)" else "(MISMATCH!)")
