(* Theorem 1, live: on nested harpoon trees the best postorder needs
   arbitrarily more memory than the optimal traversal. Prints the paper's
   formulas next to what the real algorithms compute.

     dune exec examples/harpoon.exe -- [branches] [m] [eps] *)

let () =
  let arg k default = if Array.length Sys.argv > k then int_of_string Sys.argv.(k) else default in
  let b = arg 1 3 and m = arg 2 300 and eps = arg 3 1 in
  Format.printf "harpoon family: b = %d branches, M = %d, eps = %d@." b m eps;
  Format.printf "%4s %8s %10s %10s %10s %8s@." "L" "nodes" "postorder" "optimal"
    "PO formula" "ratio";
  List.iter
    (fun levels ->
      let tree = Tt_core.Instances.harpoon_nested ~branches:b ~levels ~m ~eps in
      let po = Tt_core.Postorder_opt.best_memory tree in
      let opt = Tt_core.Liu_exact.min_memory tree in
      let formula = m + eps + (levels * (b - 1) * (m / b)) in
      Format.printf "%4d %8d %10d %10d %10d %8.3f@." levels (Tt_core.Tree.size tree) po
        opt formula
        (float_of_int po /. float_of_int opt))
    [ 1; 2; 3; 4; 5; 6 ];
  Format.printf
    "@.The postorder column tracks the paper's M + eps + L(b-1)M/b exactly, while@.\
     the optimum only grows by (b-1) small files per level: the ratio is unbounded.@."
