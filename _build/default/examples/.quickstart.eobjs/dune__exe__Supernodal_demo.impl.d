examples/supernodal_demo.ml: Array Format List Tt_core Tt_etree Tt_multifrontal Tt_ordering Tt_sparse
