examples/quickstart.ml: Array Format List String Tt_core
