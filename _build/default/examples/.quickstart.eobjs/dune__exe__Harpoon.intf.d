examples/harpoon.mli:
