examples/out_of_core.ml: Format List Tt_core Tt_etree Tt_multifrontal Tt_ordering Tt_sparse Tt_util
