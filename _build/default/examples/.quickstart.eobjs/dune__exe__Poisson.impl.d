examples/poisson.ml: Array Float Format Sys Tt_core Tt_etree Tt_multifrontal Tt_ordering Tt_sparse
