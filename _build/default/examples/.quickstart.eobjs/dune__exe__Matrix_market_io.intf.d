examples/matrix_market_io.mli:
