examples/quickstart.mli:
