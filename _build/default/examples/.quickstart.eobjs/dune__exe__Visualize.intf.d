examples/visualize.mli:
