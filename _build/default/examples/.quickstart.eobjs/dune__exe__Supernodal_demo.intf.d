examples/supernodal_demo.mli:
