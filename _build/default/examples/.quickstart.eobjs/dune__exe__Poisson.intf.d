examples/poisson.mli:
