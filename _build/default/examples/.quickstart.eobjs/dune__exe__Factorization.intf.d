examples/factorization.mli:
