examples/harpoon.ml: Array Format List Sys Tt_core
