examples/out_of_core.mli:
