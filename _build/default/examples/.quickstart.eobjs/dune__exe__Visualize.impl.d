examples/visualize.ml: Array Filename Float Format List Printf Sys Tt_core Tt_profile
