examples/matrix_market_io.ml: Array Filename Format List Printf Sys Tt_core Tt_etree Tt_ordering Tt_sparse
