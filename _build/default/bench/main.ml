(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md for the experiment index), plus the
   ablations, on the synthetic assembly-tree corpus. Run with

     dune exec bench/main.exe -- [--scale N] [--seed N] [--section NAME]*
                                 [--bechamel] [--list]

   Sections: theorem1 theorem2 fig5 table1 fig6 fig7 fig8 fig9 table2
             ablation-child-order ablation-bestk rounds all (default). *)

module T = Tt_core.Tree
module P = Tt_profile.Perf_profile
module Plot = Tt_profile.Ascii_plot
module Table = Tt_profile.Table

let scale = ref 1
let seed = ref 42
let sections : string list ref = ref []
let run_bechamel = ref true
let csv_dir : string option ref = ref None

let usage = "dune exec bench/main.exe -- [options]"

let spec =
  [ ("--scale", Arg.Set_int scale, "N corpus scale factor (default 1)");
    ("--seed", Arg.Set_int seed, "N corpus seed (default 42)");
    ( "--section",
      Arg.String (fun s -> sections := s :: !sections),
      "NAME run only this section (repeatable)" );
    ("--bechamel", Arg.Set run_bechamel, " run the Bechamel micro-benchmarks (default)");
    ("--no-bechamel", Arg.Clear run_bechamel, " skip the Bechamel micro-benchmarks");
    ( "--csv",
      Arg.String (fun d -> csv_dir := Some d),
      "DIR also write every figure's curves as CSV files into DIR" );
    ( "--list",
      Arg.Unit
        (fun () ->
          print_endline
            "theorem1 theorem2 fig5 table1 fig6 fig7 fig8 fig9 table2 \
             ablation-child-order ablation-bestk ablation-amalgamation minio-gap parallel rounds";
          exit 0),
      " list sections" )
  ]

let maybe_csv name curves =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      output_string oc (P.to_csv curves);
      close_out oc;
      Printf.printf "[csv] wrote %s\n" path

let wanted name =
  match !sections with [] -> true | l -> List.mem name l || List.mem "all" l

let header name descr =
  Printf.printf "\n==================================================================\n";
  Printf.printf "== %s — %s\n" name descr;
  Printf.printf "==================================================================\n%!"

(* ----------------------------------------------------------------- corpus *)

let corpus =
  lazy
    (let t0 = Sys.time () in
     let c = Tt_workloads.Dataset.corpus ~scale:!scale ~seed:!seed () in
     Printf.printf "[corpus] %d assembly trees (scale %d, seed %d) built in %.1fs\n%!"
       (List.length c) !scale !seed (Sys.time () -. t0);
     c)

(* opt/po memory for every instance, computed once *)
let memory_results =
  lazy
    (List.map
       (fun (i : Tt_workloads.Dataset.instance) ->
         let po = Tt_core.Postorder_opt.best_memory i.tree in
         let opt = Tt_core.Liu_exact.min_memory i.tree in
         (i, po, opt))
       (Lazy.force corpus))

(* ------------------------------------------------------------- Theorem 1 *)

let theorem1 () =
  header "Theorem 1 (Fig. 3)" "best postorder is arbitrarily worse than optimal";
  let b = 3 and m = 300 and eps = 1 in
  let rows =
    List.map
      (fun levels ->
        let tree = Tt_core.Instances.harpoon_nested ~branches:b ~levels ~m ~eps in
        let po = Tt_core.Postorder_opt.best_memory tree in
        let opt = Tt_core.Liu_exact.min_memory tree in
        let predicted_po = m + eps + (levels * (b - 1) * (m / b)) in
        [ string_of_int levels;
          string_of_int (T.size tree);
          string_of_int po;
          string_of_int predicted_po;
          string_of_int opt;
          Printf.sprintf "%.3f" (float_of_int po /. float_of_int opt)
        ])
      [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  print_string
    (Table.render
       ~header:[ "L"; "nodes"; "PostOrder"; "paper formula"; "optimal"; "ratio" ]
       rows);
  Printf.printf
    "shape check: PostOrder grows linearly in L while the optimum stays ~%d;\n\
     the ratio is unbounded, as Theorem 1 states (paper formula: M+eps+L(b-1)M/b).\n"
    (m + (2 * b * eps))

(* ------------------------------------------------------------- Theorem 2 *)

let theorem2 () =
  header "Theorem 2 (Fig. 4)" "MinIO is NP-complete: the 2-Partition gadget";
  let demo name a expect_part =
    let tree, memory, bound = Tt_core.Instances.two_partition_gadget a in
    let exact = Tt_core.Brute_force.min_io tree ~memory in
    let _, order = Tt_core.Minmem.run tree in
    let ff = Tt_core.Minio.io_volume tree ~memory ~order Tt_core.Minio.First_fit in
    Printf.printf
      "%s: a = [%s]  M = %d, I/O bound S/2 = %d -> exact min I/O = %s, First Fit = %s\n"
      name
      (String.concat "; " (Array.to_list (Array.map string_of_int a)))
      memory bound
      (match exact with Some io -> string_of_int io | None -> "infeasible")
      (match ff with Some io -> string_of_int io | None -> "infeasible");
    (match (exact, expect_part) with
    | Some io, true when io = bound -> print_endline "  => partition exists: bound met"
    | Some io, false when io > bound ->
        print_endline "  => no partition: bound unreachable, exactly as the reduction predicts"
    | _ -> print_endline "  => UNEXPECTED (see tests)")
  in
  demo "yes-instance" [| 2; 1; 1 |] true;
  demo "yes-instance" [| 4; 1; 3 |] true;
  demo "no-instance " [| 10; 3; 3 |] false;
  demo "no-instance " [| 12; 3; 3 |] false

(* ------------------------------------------------------- Fig. 5 / Table I *)

let fig5_table1 () =
  header "Figure 5 + Table I" "memory of the best postorder vs the optimal traversal";
  let results = Lazy.force memory_results in
  let ratios =
    List.map (fun (_, po, opt) -> float_of_int po /. float_of_int opt) results
  in
  let non_optimal = List.filter (fun r -> r > 1.0 +. 1e-12) ratios in
  let n = List.length ratios and k = List.length non_optimal in
  let stats = Array.of_list ratios in
  let mx, _ = (Tt_util.Statistics.min_max stats |> snd, ()) in
  print_string
    (Table.render_kv
       [ ("Non optimal PostOrder traversals", Printf.sprintf "%.1f%%  (paper: 4.2%%)"
            (100. *. float_of_int k /. float_of_int n));
         ("Max. PostOrder to opt. cost ratio", Printf.sprintf "%.2f  (paper: 1.18)" mx);
         ("Avg. PostOrder to opt. cost ratio", Printf.sprintf "%.3f  (paper: 1.01)"
            (Tt_util.Statistics.mean stats));
         ("Std. dev. of the ratio", Printf.sprintf "%.3f  (paper: 0.01)"
            (Tt_util.Statistics.stddev stats))
       ]);
  if k = 0 then
    print_endline "PostOrder optimal on every instance at this scale; Figure 5 skipped."
  else begin
    (* the paper's Figure 5 restricts the profile to non-optimal cases *)
    let costs =
      List.filter_map
        (fun (_, po, opt) ->
          if po > opt then Some [| float_of_int opt; float_of_int po |] else None)
        results
      |> Array.of_list
    in
    let curves = P.compute ~names:[ "Optimal"; "PostOrder" ] costs in
    maybe_csv "fig5" curves;
    print_string
      (Plot.render
         ~title:
           (Printf.sprintf
              "Figure 5: memory perf profile on the %d non-optimal instances" k)
         curves)
  end

(* ------------------------------------------------------------------ Fig. 6 *)

let fig6 () =
  header "Figure 6" "running times of PostOrder / Liu / MinMem";
  let insts = Lazy.force corpus in
  let algos =
    [ ("MinMem", fun t -> ignore (Tt_core.Minmem.run t));
      ("PostOrder", fun t -> ignore (Tt_core.Postorder_opt.run t));
      ("Liu", fun t -> ignore (Tt_core.Liu_exact.run t))
    ]
  in
  let costs =
    List.map
      (fun (i : Tt_workloads.Dataset.instance) ->
        Array.of_list
          (List.map
             (fun (_, f) ->
               let _, dt = Tt_util.Timer.time_repeat ~min_time:0.002 (fun () -> f i.tree) in
               dt)
             algos))
      insts
    |> Array.of_list
  in
  let names = List.map fst algos in
  let curves = P.compute ~tau_max:5.0 ~names costs in
  maybe_csv "fig6" curves;
  print_string (Plot.render ~title:"Figure 6: runtime performance profile" curves);
  List.iteri
    (fun j name ->
      Printf.printf "%-10s fastest on %.0f%% of instances\n" name
        (100. *. P.fraction_within costs ~column:j ~tau:1.0))
    names;
  Printf.printf "paper shape: MinMem fastest in ~80%% of cases, Liu slowest -> %s wins here\n"
    (P.dominant curves)

(* ------------------------------------------------------------------ Fig. 7 *)

(* MinIO instances: per tree, a few memory budgets between the largest
   single-node requirement and the traversal's in-core peak. *)
let minio_instances order_of =
  List.filter_map
    (fun (i : Tt_workloads.Dataset.instance) ->
      let order = order_of i.tree in
      let peak = Tt_core.Traversal.peak i.tree order in
      let lo = T.max_mem_req i.tree in
      if peak <= lo then None
      else
        Some
          (List.filter_map
             (fun fraction ->
               let memory = lo + int_of_float (fraction *. float_of_int (peak - lo)) in
               if memory >= peak then None else Some (i, order, memory))
             [ 0.0; 0.25; 0.5; 0.75 ])
    )
    (Lazy.force corpus)
  |> List.concat

let fig7 () =
  header "Figure 7" "I/O volume of the six eviction heuristics on MinMem traversals";
  let cases = minio_instances (fun t -> snd (Tt_core.Minmem.run t)) in
  Printf.printf "%d (tree, memory) cases\n" (List.length cases);
  let names = List.map fst Tt_core.Minio.all_policies in
  let costs =
    List.map
      (fun ((i : Tt_workloads.Dataset.instance), order, memory) ->
        Array.of_list
          (List.map
             (fun (_, pol) ->
               match Tt_core.Minio.io_volume i.tree ~memory ~order pol with
               | Some io -> float_of_int io
               | None -> infinity)
             Tt_core.Minio.all_policies))
      cases
    |> Array.of_list
  in
  let curves = P.compute ~tau_max:4.0 ~names costs in
  maybe_csv "fig7" curves;
  print_string (Plot.render ~title:"Figure 7: I/O perf profile (MinMem traversals)" curves);
  List.iteri
    (fun j name ->
      Printf.printf "%-14s best on %5.1f%% of cases, avg ratio %.3f\n" name
        (100. *. P.fraction_within costs ~column:j ~tau:1.0)
        (Tt_util.Statistics.mean (P.ratios costs ~column:j)))
    names;
  Printf.printf "paper shape: First Fit ~ Best K Comb. > fills > LSNF/Best Fit -> winner: %s\n"
    (P.dominant curves);
  (* extension: gap to the divisible lower bound *)
  let gaps =
    List.filter_map
      (fun ((i : Tt_workloads.Dataset.instance), order, memory) ->
        match
          ( Tt_core.Minio.io_volume i.tree ~memory ~order Tt_core.Minio.First_fit,
            Tt_core.Minio.divisible_lower_bound i.tree ~memory ~order )
        with
        | Some io, Some lb when lb > 0. -> Some (float_of_int io /. lb)
        | Some _, Some _ -> None
        | _ -> None)
      cases
  in
  if gaps <> [] then
    Printf.printf
      "extension: First Fit vs divisible-LSNF lower bound: avg %.3fx, max %.3fx (%d cases)\n"
      (Tt_util.Statistics.mean (Array.of_list gaps))
      (snd (Tt_util.Statistics.min_max (Array.of_list gaps)))
      (List.length gaps)

(* ------------------------------------------------------------------ Fig. 8 *)

let fig8 () =
  header "Figure 8" "traversal sources for out-of-core execution (policy: First Fit)";
  let sources =
    [ ("PostOrder + First Fit", fun t -> snd (Tt_core.Postorder_opt.run t));
      ("Liu + First Fit", fun t -> snd (Tt_core.Liu_exact.run t));
      ("MinMem + First Fit", fun t -> snd (Tt_core.Minmem.run t))
    ]
  in
  let portfolio_io tree memory =
    let rng = Tt_util.Rng.create (!seed + 3) in
    match Tt_core.Minio_search.run ~attempts:6 ~rng tree ~memory with
    | Some o -> float_of_int o.Tt_core.Minio_search.io
    | None -> infinity
  in
  (* memory budgets must be shared across traversals: use the MinMem
     traversal peaks to define them, as the paper ranges from max MemReq
     to the minimal memory of the traversal *)
  let cases = minio_instances (fun t -> snd (Tt_core.Minmem.run t)) in
  let costs =
    List.map
      (fun ((i : Tt_workloads.Dataset.instance), _minmem_order, memory) ->
        Array.of_list
          (List.map
             (fun (_, order_of) ->
               let order = order_of i.tree in
               match
                 Tt_core.Minio.io_volume i.tree ~memory ~order Tt_core.Minio.First_fit
               with
               | Some io -> float_of_int io
               | None -> infinity)
             sources
          @ [ portfolio_io i.tree memory ]))
      cases
    |> Array.of_list
  in
  let names = List.map fst sources @ [ "Portfolio (extension)" ] in
  let curves = P.compute ~tau_max:4.0 ~names costs in
  maybe_csv "fig8" curves;
  print_string (Plot.render ~title:"Figure 8: I/O by traversal source" curves);
  List.iteri
    (fun j name ->
      Printf.printf "%-22s best on %5.1f%% of cases, avg ratio %.3f\n" name
        (100. *. P.fraction_within costs ~column:j ~tau:1.0)
        (Tt_util.Statistics.mean (P.ratios costs ~column:j)))
    names;
  Printf.printf "paper shape: PostOrder best, Liu in between, MinMem worst -> winner: %s\n"
    (P.dominant curves)

(* ---------------------------------------------------- Fig. 9 / Table II *)

let fig9_table2 () =
  header "Figure 9 + Table II" "PostOrder vs optimal on randomly re-weighted trees";
  let random_insts =
    Tt_workloads.Random_weights.corpus ~variants:3 ~seed:(!seed + 7) (Lazy.force corpus)
  in
  Printf.printf "%d random trees (structures from the corpus, weights ~ §VI-E)\n"
    (List.length random_insts);
  let results =
    List.map
      (fun (i : Tt_workloads.Dataset.instance) ->
        let po = Tt_core.Postorder_opt.best_memory i.tree in
        let opt = Tt_core.Liu_exact.min_memory i.tree in
        (po, opt))
      random_insts
  in
  let ratios =
    Array.of_list (List.map (fun (po, opt) -> float_of_int po /. float_of_int opt) results)
  in
  let k = Array.length (Array.of_seq (Seq.filter (fun r -> r > 1. +. 1e-12) (Array.to_seq ratios))) in
  print_string
    (Table.render_kv
       [ ("Non optimal PostOrder traversals", Printf.sprintf "%.0f%%  (paper: 61%%)"
            (100. *. float_of_int k /. float_of_int (Array.length ratios)));
         ("Max. PostOrder to opt. cost ratio", Printf.sprintf "%.2f  (paper: 2.22)"
            (snd (Tt_util.Statistics.min_max ratios)));
         ("Avg. PostOrder to opt. cost ratio", Printf.sprintf "%.3f  (paper: 1.12)"
            (Tt_util.Statistics.mean ratios));
         ("Std. dev. of the ratio", Printf.sprintf "%.3f  (paper: 0.13)"
            (Tt_util.Statistics.stddev ratios))
       ]);
  let costs =
    Array.of_list
      (List.map (fun (po, opt) -> [| float_of_int opt; float_of_int po |]) results)
  in
  let curves = P.compute ~tau_max:2.5 ~names:[ "Optimal"; "PostOrder" ] costs in
  maybe_csv "fig9" curves;
  print_string (Plot.render ~title:"Figure 9: memory perf profile on random trees" curves)

(* -------------------------------------------------------------- ablations *)

let ablation_child_order () =
  header "Ablation" "child-ordering rule inside the postorder algorithm";
  let results = Lazy.force memory_results in
  let rules =
    [ ( "increasing P-f (Liu's rule)",
        fun tree ->
          float_of_int (Tt_core.Postorder_opt.best_memory tree) );
      ( "natural order",
        fun tree ->
          float_of_int
            (Tt_core.Postorder_opt.peak_with_child_order tree (fun i ->
                 tree.T.children.(i))) );
      ( "increasing subtree peak",
        fun tree ->
          let peaks = Tt_core.Postorder_opt.subtree_peaks tree in
          float_of_int
            (Tt_core.Postorder_opt.peak_with_child_order tree (fun i ->
                 let cs = Array.copy tree.T.children.(i) in
                 Array.sort (fun a b -> compare peaks.(a) peaks.(b)) cs;
                 cs)) )
    ]
  in
  let rows =
    List.map
      (fun (name, f) ->
        let ratios =
          List.map
            (fun ((i : Tt_workloads.Dataset.instance), _, opt) ->
              f i.tree /. float_of_int opt)
            results
        in
        let a = Array.of_list ratios in
        [ name;
          Printf.sprintf "%.4f" (Tt_util.Statistics.mean a);
          Printf.sprintf "%.3f" (snd (Tt_util.Statistics.min_max a));
          Printf.sprintf "%.1f%%"
            (100. *. Tt_util.Statistics.fraction (fun r -> r <= 1. +. 1e-12) a)
        ])
      rules
  in
  print_string
    (Table.render ~header:[ "child order"; "avg ratio"; "max ratio"; "optimal" ] rows)

let ablation_bestk () =
  header "Ablation" "Best-K Combination for K = 1..8 (paper uses K = 5)";
  let cases = minio_instances (fun t -> snd (Tt_core.Minmem.run t)) in
  let ks = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let policies =
    List.map (fun k -> (Printf.sprintf "Best-%d" k, Tt_core.Minio.Best_k k)) ks
    @ [ ("First Fit", Tt_core.Minio.First_fit) ]
  in
  let costs =
    List.map
      (fun ((i : Tt_workloads.Dataset.instance), order, memory) ->
        Array.of_list
          (List.map
             (fun (_, pol) ->
               match Tt_core.Minio.io_volume i.tree ~memory ~order pol with
               | Some io -> float_of_int io
               | None -> infinity)
             policies))
      cases
    |> Array.of_list
  in
  let rows =
    List.mapi
      (fun j (name, _) ->
        [ name;
          Printf.sprintf "%.4f" (Tt_util.Statistics.mean (P.ratios costs ~column:j));
          Printf.sprintf "%.1f%%" (100. *. P.fraction_within costs ~column:j ~tau:1.0)
        ])
      policies
  in
  print_string (Table.render ~header:[ "policy"; "avg ratio"; "best" ] rows)

let rounds () =
  header "MinMem rounds" "number of Explore rounds (complexity evidence)";
  let insts = Lazy.force corpus in
  let data =
    List.map
      (fun (i : Tt_workloads.Dataset.instance) ->
        (T.size i.tree, Tt_core.Minmem.iterations i.tree))
      insts
  in
  let rs = Array.of_list (List.map (fun (_, r) -> float_of_int r) data) in
  let ps = Array.of_list (List.map (fun (p, _) -> float_of_int p) data) in
  Printf.printf
    "rounds: avg %.1f, max %.0f over trees of avg size %.0f (worst-case bound: O(p))\n"
    (Tt_util.Statistics.mean rs)
    (snd (Tt_util.Statistics.min_max rs))
    (Tt_util.Statistics.mean ps)




(* ------------------------------------------------------ parallel extension *)

let parallel_section () =
  header "Parallel extension"
    "memory-constrained parallel traversal (the conclusion's future work)";
  let insts =
    List.filter
      (fun (i : Tt_workloads.Dataset.instance) ->
        let p = T.size i.tree in
        p >= 50 && p <= 1200)
      (Lazy.force corpus)
  in
  let work tree i = 1 + (tree.T.n.(i) / 8) in
  let procs_list = [ 1; 2; 4; 8; 16 ] in
  let mem_factors = [ (1.0, "1.0x"); (1.5, "1.5x"); (3.0, "3.0x") ] in
  Printf.printf "%d trees; speedup vs 1 processor (geometric mean)\n" (List.length insts);
  let rows =
    List.map
      (fun (factor, label) ->
        let cells =
          List.map
            (fun procs ->
              let speedups =
                List.filter_map
                  (fun (i : Tt_workloads.Dataset.instance) ->
                    let w = work i.tree in
                    let seq = Tt_core.Parallel.sequential_makespan i.tree ~work:w in
                    let memory =
                      int_of_float
                        (factor *. float_of_int (Tt_core.Minmem.min_memory i.tree))
                    in
                    match Tt_core.Parallel.list_schedule i.tree ~procs ~memory ~work:w with
                    | Some s -> Some (float_of_int seq /. float_of_int s.Tt_core.Parallel.makespan)
                    | None -> None)
                  insts
              in
              if speedups = [] then "-"
              else
                Printf.sprintf "%.2f"
                  (Tt_util.Statistics.geometric_mean (Array.of_list speedups)))
            procs_list
        in
        (label ^ " memory") :: cells)
      mem_factors
  in
  print_string
    (Table.render
       ~header:("budget" :: List.map (fun p -> Printf.sprintf "p=%d" p) procs_list)
       rows);
  print_endline
    "With memory pinned at the sequential optimum, extra processors cannot be\n\
     fed (speedup saturates); relaxing the budget restores parallelism --\n\
     memory, not processors, is the binding resource, which is the paper's\n\
     closing point."

(* ------------------------------------------------- amalgamation ablation *)

let ablation_amalgamation () =
  header "Ablation" "amalgamation level vs optimal in-core memory";
  let ms = Tt_workloads.Dataset.matrices ~scale:!scale ~seed:!seed () in
  let limits = [ 1; 2; 4; 16; 64 ] in
  let rows =
    List.filter_map
      (fun (name, m) ->
        if (Tt_sparse.Csr.nnz m) > 40_000 then None
        else begin
          let cells =
            List.map
              (fun limit ->
                let asm =
                  Tt_workloads.Pipeline.assembly_tree
                    ~ordering:Tt_workloads.Pipeline.Min_degree ~amalgamation:limit m
                in
                let tree = asm.Tt_etree.Assembly.tree in
                Printf.sprintf "%d/%d" (T.size tree) (Tt_core.Minmem.min_memory tree))
              limits
          in
          Some (name :: cells)
        end)
      ms
  in
  print_string
    (Table.render
       ~header:("matrix" :: List.map (fun l -> Printf.sprintf "a%d (p/mem)" l) limits)
       rows);
  print_endline
    "More amalgamation: smaller trees, denser fronts, higher optimal memory --\n\
     the granularity trade-off the paper's corpus construction exercises."

(* -------------------------------------------------- heuristic optimality *)

let minio_gap () =
  header "MinIO optimality gap"
    "heuristics vs the exact branch-and-bound (extension beyond the paper)";
  let cases =
    List.filter
      (fun ((i : Tt_workloads.Dataset.instance), _, _) -> T.size i.tree <= 120)
      (minio_instances (fun t -> snd (Tt_core.Minmem.run t)))
  in
  Printf.printf "%d cases with at most 120 nodes\n" (List.length cases);
  let per_policy = Hashtbl.create 8 in
  let solved = ref 0 and unsolved = ref 0 in
  List.iter
    (fun ((i : Tt_workloads.Dataset.instance), order, memory) ->
      match Tt_core.Minio_exact.given_order ~node_budget:300_000 i.tree ~memory ~order with
      | exception Failure _ -> incr unsolved
      | None -> ()
      | Some exact ->
          incr solved;
          List.iter
            (fun (name, pol) ->
              match Tt_core.Minio.io_volume i.tree ~memory ~order pol with
              | Some io ->
                  let num, den, worst =
                    try Hashtbl.find per_policy name with Not_found -> (0, 0, 1.0)
                  in
                  let ratio =
                    if exact = 0 then if io = 0 then 1.0 else infinity
                    else float_of_int io /. float_of_int exact
                  in
                  Hashtbl.replace per_policy name
                    ((if io = exact then num + 1 else num), den + 1, Float.max worst ratio)
              | None -> ())
            Tt_core.Minio.all_policies)
    cases;
  Printf.printf "exact optimum computed on %d cases (%d exceeded the search budget)\n"
    !solved !unsolved;
  let rows =
    List.map
      (fun (name, _) ->
        let num, den, worst = try Hashtbl.find per_policy name with Not_found -> (0, 1, nan) in
        [ name;
          Printf.sprintf "%.1f%%" (100. *. float_of_int num /. float_of_int (max den 1));
          (if worst = infinity then "inf" else Printf.sprintf "%.2f" worst)
        ])
      Tt_core.Minio.all_policies
  in
  print_string (Table.render ~header:[ "policy"; "exactly optimal"; "worst ratio" ] rows)

(* ------------------------------------------------------------- bechamel *)

let bechamel_suite () =
  header "Bechamel" "micro-benchmarks, one Test.make per table/figure kernel";
  let open Bechamel in
  let tree = (Tt_workloads.Pipeline.assembly_tree (Tt_sparse.Spgen.grid2d (24 * !scale))).Tt_etree.Assembly.tree in
  let _, order = Tt_core.Minmem.run tree in
  let memory = T.max_mem_req tree in
  let tests =
    [ Test.make ~name:"table1_fig5_postorder" (Staged.stage (fun () ->
          ignore (Tt_core.Postorder_opt.run tree)));
      Test.make ~name:"fig6_liu" (Staged.stage (fun () ->
          ignore (Tt_core.Liu_exact.run tree)));
      Test.make ~name:"fig6_minmem" (Staged.stage (fun () ->
          ignore (Tt_core.Minmem.run tree)));
      Test.make ~name:"fig7_first_fit" (Staged.stage (fun () ->
          ignore (Tt_core.Minio.io_volume tree ~memory ~order Tt_core.Minio.First_fit)));
      Test.make ~name:"fig7_best_k" (Staged.stage (fun () ->
          ignore (Tt_core.Minio.io_volume tree ~memory ~order (Tt_core.Minio.Best_k 5))));
      Test.make ~name:"fig8_postorder_first_fit" (Staged.stage (fun () ->
          let order = snd (Tt_core.Postorder_opt.run tree) in
          ignore (Tt_core.Minio.io_volume tree ~memory ~order Tt_core.Minio.First_fit)));
      Test.make ~name:"fig9_reweight_postorder" (Staged.stage (fun () ->
          let rng = Tt_util.Rng.create 1 in
          let t = Tt_workloads.Random_weights.reweight ~rng tree in
          ignore (Tt_core.Postorder_opt.best_memory t)));
      Test.make ~name:"theorem1_harpoon" (Staged.stage (fun () ->
          ignore (Tt_core.Instances.theorem1_ratio ~branches:3 ~levels:4 ~m:300 ~eps:1)))
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      let a = analyze results in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        a)
    (List.map (fun t -> Test.make_grouped ~name:"g" [ t ]) tests)

(* ------------------------------------------------------------------ main *)

let () =
  Arg.parse spec (fun s -> raise (Arg.Bad ("unexpected argument " ^ s))) usage;
  let t0 = Sys.time () in
  if wanted "theorem1" then theorem1 ();
  if wanted "theorem2" then theorem2 ();
  if wanted "fig5" || wanted "table1" then fig5_table1 ();
  if wanted "fig6" then fig6 ();
  if wanted "fig7" then fig7 ();
  if wanted "fig8" then fig8 ();
  if wanted "fig9" || wanted "table2" then fig9_table2 ();
  if wanted "ablation-child-order" then ablation_child_order ();
  if wanted "ablation-bestk" then ablation_bestk ();
  if wanted "ablation-amalgamation" then ablation_amalgamation ();
  if wanted "parallel" then parallel_section ();
  if wanted "minio-gap" then minio_gap ();
  if wanted "rounds" then rounds ();
  if !run_bechamel && (!sections = [] || List.mem "bechamel" !sections) then
    bechamel_suite ();
  Printf.printf "\n[bench] total time %.1fs\n" (Sys.time () -. t0)
