(* Tests for performance profiles, ASCII plots and tables. *)

module P = Tt_profile.Perf_profile
module H = Helpers

(* three methods on three instances: A always best, B within 2x, C fails
   on the last instance *)
let costs =
  [| [| 1.; 2.; 1. |]; [| 10.; 20.; 30. |]; [| 4.; 4.; infinity |] |]

let names = [ "A"; "B"; "C" ]

let test_fraction_within () =
  Alcotest.(check (float 1e-9)) "A best everywhere" 1.
    (P.fraction_within costs ~column:0 ~tau:1.0);
  Alcotest.(check (float 1e-9)) "B best on one" (1. /. 3.)
    (P.fraction_within costs ~column:1 ~tau:1.0);
  Alcotest.(check (float 1e-9)) "B within 2x everywhere" 1.
    (P.fraction_within costs ~column:1 ~tau:2.0);
  Alcotest.(check (float 1e-9)) "C never catches up" (2. /. 3.)
    (P.fraction_within costs ~column:2 ~tau:1000.)

let test_ratios () =
  Alcotest.(check (array (float 1e-9))) "ratios of B" [| 2.; 2.; 1. |]
    (P.ratios costs ~column:1);
  let rc = P.ratios costs ~column:2 in
  Alcotest.(check (float 1e-9)) "C ratio 1" 1. rc.(0);
  Alcotest.(check bool) "C fails" true (rc.(2) = infinity)

let test_compute_curves () =
  let curves = P.compute ~tau_max:4. ~samples:16 ~names costs in
  Alcotest.(check int) "three curves" 3 (List.length curves);
  List.iter
    (fun (c : P.curve) ->
      Alcotest.(check int) "sample count" 16 (Array.length c.P.points);
      (* fractions are monotone and within [0,1] *)
      let prev = ref (-1.) in
      Array.iter
        (fun (tau, frac) ->
          if frac < !prev -. 1e-12 then Alcotest.fail "fraction not monotone";
          prev := frac;
          if tau < 1. -. 1e-9 || frac < 0. || frac > 1. then
            Alcotest.fail "out of range")
        c.P.points)
    curves;
  Alcotest.(check string) "dominant" "A" (P.dominant curves)

let test_compute_validation () =
  Alcotest.check_raises "ragged" (Invalid_argument "Perf_profile: ragged cost matrix")
    (fun () -> ignore (P.compute ~names [| [| 1. |]; [| 1.; 2. |] |]));
  Alcotest.check_raises "negative" (Invalid_argument "Perf_profile: negative cost")
    (fun () -> ignore (P.compute ~names:[ "x" ] [| [| -1. |] |]))

let test_zero_costs () =
  (* zero best cost: equal-zero methods count as ratio 1, others fail *)
  let c = [| [| 0.; 0.; 5. |] |] in
  let r0 = P.ratios c ~column:0 and r2 = P.ratios c ~column:2 in
  Alcotest.(check (float 0.)) "zero vs zero" 1. r0.(0);
  Alcotest.(check bool) "positive vs zero" true (r2.(0) = infinity)

let test_all_failed_instance_skipped () =
  let c = [| [| infinity; infinity |]; [| 1.; 2. |] |] in
  Alcotest.(check int) "only one usable instance" 1
    (Array.length (P.ratios c ~column:0))

(* ------------------------------------------------------------- ascii plot *)

(* substring search helper *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0


let test_plot_renders () =
  let curves = P.compute ~tau_max:4. ~samples:16 ~names costs in
  let s = Tt_profile.Ascii_plot.render ~width:40 ~height:10 ~title:"demo" curves in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 4 = "demo");
  Alcotest.(check bool) "has legend A" true (contains s "* A");
  Alcotest.(check bool) "axis present" true (contains s "tau:")

let test_plot_empty () =
  let s = Tt_profile.Ascii_plot.render [] in
  Alcotest.(check bool) "placeholder" true (contains s "no curves")

(* ----------------------------------------------------------------- table *)

let test_table_render () =
  let s =
    Tt_profile.Table.render ~header:[ "name"; "v" ] [ [ "a"; "10" ]; [ "bb"; "7" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "four lines + trailing" 5 (List.length lines);
  Alcotest.(check bool) "aligned" true (contains s "bb");
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row")
    (fun () -> ignore (Tt_profile.Table.render ~header:[ "a" ] [ [ "x"; "y" ] ]))

let test_table_kv () =
  let s = Tt_profile.Table.render_kv [ ("k", "v"); ("longer", "w") ] in
  Alcotest.(check bool) "kv contains" true (contains s "longer  w")


let test_to_csv () =
  let curves = P.compute ~tau_max:4. ~samples:8 ~names costs in
  let csv = P.to_csv curves in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 8 rows" 9 (List.length lines);
  Alcotest.(check string) "header" "tau,A,B,C" (List.hd lines);
  Alcotest.check_raises "mismatched grids"
    (Invalid_argument "Perf_profile.to_csv: mismatched tau grids") (fun () ->
      let shifted =
        { P.name = "D";
          points = Array.map (fun (t, f) -> (t +. 1., f)) (List.hd curves).P.points
        }
      in
      ignore (P.to_csv (curves @ [ shifted ])))

let () =
  H.run "profile"
    [ ( "perf profile",
        [ H.case "fraction_within" test_fraction_within;
          H.case "ratios" test_ratios;
          H.case "curves" test_compute_curves;
          H.case "validation" test_compute_validation;
          H.case "zero costs" test_zero_costs;
          H.case "failed instances" test_all_failed_instance_skipped;
          H.case "csv" test_to_csv
        ] );
      ( "ascii plot",
        [ H.case "renders" test_plot_renders; H.case "empty" test_plot_empty ] );
      ("table", [ H.case "render" test_table_render; H.case "kv" test_table_kv ])
    ]
