(* Tests for the Explore routine (Algorithm 3) in isolation. *)

module T = Tt_core.Tree
module E = Tt_core.Explore
module H = Helpers

let fresh_explore t ~mavail =
  let mpeak_tbl = Array.make (T.size t) E.infinity_mem in
  let cache = E.make_cache t in
  E.explore t ~mpeak_tbl ~cache t.T.root ~mavail ~linit:[] ~trinit:Tt_util.Rope.empty

let test_full_exploration () =
  let t = Tt_core.Instances.harpoon ~branches:3 ~m:30 ~eps:1 in
  let opt = Tt_core.Liu_exact.min_memory t in
  let r = fresh_explore t ~mavail:opt in
  Alcotest.(check int) "cut occupation" 0 r.E.m_cut;
  Alcotest.(check (list int)) "empty cut" [] r.E.cut;
  Alcotest.(check int) "mpeak infinity" E.infinity_mem r.E.mpeak;
  let order = Tt_util.Rope.to_array r.E.trav in
  Alcotest.(check int) "complete traversal" (T.size t) (Array.length order);
  H.check_valid_traversal t order;
  if Tt_core.Traversal.peak t order > opt then Alcotest.fail "traversal above budget"

let test_entry_failure () =
  let t = T.make ~parent:[| -1; 0 |] ~f:[| 5; 3 |] ~n:[| 2; 0 |] in
  (* MemReq(root) = 10: with 9 the root itself cannot run *)
  let r = fresh_explore t ~mavail:9 in
  Alcotest.(check int) "m_cut infinity" E.infinity_mem r.E.m_cut;
  Alcotest.(check int) "mpeak is MemReq" 10 r.E.mpeak

let test_leaf_shortcut () =
  let t = T.make ~parent:[| -1 |] ~f:[| 4 |] ~n:[| 3 |] in
  let r = fresh_explore t ~mavail:7 in
  Alcotest.(check int) "leaf done" 0 r.E.m_cut;
  let r2 = fresh_explore t ~mavail:6 in
  Alcotest.(check int) "leaf fails" E.infinity_mem r2.E.m_cut;
  Alcotest.(check int) "leaf peak" 7 r2.E.mpeak

let prop_mpeak_exceeds_mavail =
  H.qcheck "returned mpeak always exceeds the memory explored with"
    (H.arb_tree ~size_max:15 ()) (fun t ->
      let mavail = T.max_mem_req t in
      let r = fresh_explore t ~mavail in
      r.E.mpeak = E.infinity_mem || r.E.mpeak > mavail)

let prop_partial_traversal_feasible =
  H.qcheck "the partial traversal is a feasible prefix"
    (H.arb_tree ~size_max:15 ()) (fun t ->
      let mavail = T.max_mem_req t in
      let r = fresh_explore t ~mavail in
      let prefix = Tt_util.Rope.to_array r.E.trav in
      (* simulate the prefix: it must respect precedence and memory *)
      let ready = Array.make (T.size t) false in
      ready.(t.T.root) <- true;
      let ready_f = ref t.T.f.(t.T.root) in
      let ok = ref true in
      Array.iter
        (fun i ->
          if not ready.(i) then ok := false
          else begin
            let usage = !ready_f + t.T.n.(i) + T.sum_children_f t i in
            if usage > mavail then ok := false;
            ready.(i) <- false;
            ready_f := !ready_f - t.T.f.(i) + T.sum_children_f t i;
            Array.iter (fun c -> ready.(c) <- true) t.T.children.(i)
          end)
        prefix;
      !ok)

let prop_cut_matches_traversal =
  H.qcheck "the cut is exactly the ready frontier after the prefix"
    (H.arb_tree ~size_max:15 ()) (fun t ->
      let mavail = T.max_mem_req t in
      let r = fresh_explore t ~mavail in
      if r.E.m_cut = E.infinity_mem then true
      else begin
        let prefix = Tt_util.Rope.to_array r.E.trav in
        let executed = Array.make (T.size t) false in
        Array.iter (fun i -> executed.(i) <- true) prefix;
        let frontier = ref [] in
        for i = T.size t - 1 downto 0 do
          let produced = i = t.T.root || executed.(t.T.parent.(i)) in
          if produced && not executed.(i) then frontier := i :: !frontier
        done;
        List.sort compare r.E.cut = !frontier
        && r.E.m_cut = List.fold_left (fun acc i -> acc + t.T.f.(i)) 0 !frontier
      end)

let test_resume_equivalence () =
  (* exploring at M directly and exploring at M' < M then resuming at M
     must reach the same final memory answer through MinMem *)
  let rng = Tt_util.Rng.create 31 in
  for _ = 1 to 50 do
    let t = T.random ~rng ~size:(Tt_util.Rng.int_incl rng 2 20) ~max_f:15 ~max_n:8 in
    Alcotest.(check int) "minmem (resume machinery) = liu (direct)"
      (Tt_core.Liu_exact.min_memory t)
      (Tt_core.Minmem.min_memory t)
  done

let () =
  H.run "explore"
    [ ( "basics",
        [ H.case "full exploration" test_full_exploration;
          H.case "entry failure" test_entry_failure;
          H.case "leaf shortcut" test_leaf_shortcut
        ] );
      ( "invariants",
        [ prop_mpeak_exceeds_mavail;
          prop_partial_traversal_feasible;
          prop_cut_matches_traversal
        ] );
      ("resume", [ H.case "resume equivalence" test_resume_equivalence ])
    ]
