(* Tests for the best-postorder algorithm (Liu 1986). The key oracle is
   exhaustive enumeration of every postorder on small random trees. *)

module T = Tt_core.Tree
module Tr = Tt_core.Traversal
module PO = Tt_core.Postorder_opt
module H = Helpers

let is_postorder t order =
  (* every subtree occupies a contiguous slice of the order *)
  let pos = Array.make (T.size t) 0 in
  Array.iteri (fun step i -> pos.(i) <- step) order;
  let sz = T.subtree_sizes t in
  let ok = ref true in
  for i = 0 to T.size t - 1 do
    (* all descendants of i must be within (pos i, pos i + size i) *)
    let lo = pos.(i) and hi = pos.(i) + sz.(i) - 1 in
    Array.iter
      (fun c -> if pos.(c) <= lo || pos.(c) > hi then ok := false)
      t.T.children.(i)
  done;
  !ok

let prop_result_is_postorder =
  H.qcheck "run returns a valid postorder traversal" (H.arb_tree ~size_max:25 ())
    (fun t ->
      let _, order = PO.run t in
      Tr.is_valid_order t order && is_postorder t order)

let prop_claimed_peak_matches =
  H.qcheck "claimed memory equals the traversal's peak" (H.arb_tree ~size_max:25 ())
    (fun t ->
      let mem, order = PO.run t in
      Tr.peak t order = mem)

let prop_optimal_among_postorders =
  H.qcheck ~count:300 "optimal among all postorders (exhaustive oracle)"
    (H.arb_tree ~size_max:7 ~max_f:9 ~max_n:5 ()) (fun t ->
      let mem, _ = PO.run t in
      let best =
        List.fold_left
          (fun acc o -> min acc (Tr.peak t o))
          max_int (PO.all_postorders t)
      in
      mem = best)

let prop_subtree_peaks_root =
  H.qcheck "subtree_peaks at root = best postorder memory" (H.arb_tree ())
    (fun t -> (PO.subtree_peaks t).(t.T.root) = PO.best_memory t)

let prop_keyed_rule_beats_natural =
  H.qcheck "the keyed child order never loses to the natural order"
    (H.arb_tree ~size_max:20 ()) (fun t ->
      PO.best_memory t <= PO.peak_with_child_order t (fun i -> t.T.children.(i)))

let prop_peak_with_child_order_consistent =
  H.qcheck "peak_with_child_order on natural order equals simulated postorder"
    (H.arb_tree ~size_max:15 ()) (fun t ->
      (* emit the natural-order postorder traversal and simulate it *)
      let order = Array.make (T.size t) (-1) in
      let k = ref 0 in
      let rec emit i =
        order.(!k) <- i;
        incr k;
        Array.iter emit t.T.children.(i)
      in
      emit t.T.root;
      PO.peak_with_child_order t (fun i -> t.T.children.(i)) = Tr.peak t order)

let test_harpoon_formula () =
  (* the closed form from the proof of Theorem 1 *)
  List.iter
    (fun (b, m, eps) ->
      let t = Tt_core.Instances.harpoon ~branches:b ~m ~eps in
      Alcotest.(check int)
        (Printf.sprintf "harpoon b=%d" b)
        (m + eps + ((b - 1) * (m / b)))
        (PO.best_memory t))
    [ (2, 100, 1); (3, 300, 1); (4, 400, 2); (5, 1000, 3) ]

let test_chain_postorder () =
  (* a chain has a single traversal; peak = max consecutive pair + n *)
  let t = Tt_core.Instances.chain ~length:6 ~f:5 ~n:2 in
  Alcotest.(check int) "chain peak" 12 (PO.best_memory t);
  let t' = Tt_core.Instances.chain ~length:2 ~f:3 ~n:0 in
  Alcotest.(check int) "2-chain peak" 6 (PO.best_memory t')

let test_star_postorder () =
  (* star: root executes with all leaves in memory: f_root + n + b*f_leaf,
     then leaves are consumed one by one *)
  let t = Tt_core.Instances.star ~branches:4 ~f_root:2 ~f_leaf:3 ~n:1 in
  Alcotest.(check int) "star peak" (2 + 1 + 12) (PO.best_memory t)

let test_all_postorders_guard () =
  let big = Tt_core.Instances.star ~branches:10 ~f_root:1 ~f_leaf:1 ~n:0 in
  Alcotest.check_raises "guard"
    (Invalid_argument "Postorder_opt.all_postorders: tree too large") (fun () ->
      ignore (PO.all_postorders big))

let test_all_postorders_star_count () =
  let t = Tt_core.Instances.star ~branches:4 ~f_root:1 ~f_leaf:1 ~n:0 in
  Alcotest.(check int) "4! postorders" 24 (List.length (PO.all_postorders t))

let () =
  H.run "postorder"
    [ ( "structure",
        [ prop_result_is_postorder;
          prop_claimed_peak_matches;
          H.case "all_postorders guard" test_all_postorders_guard;
          H.case "star enumeration count" test_all_postorders_star_count
        ] );
      ( "optimality",
        [ prop_optimal_among_postorders;
          prop_subtree_peaks_root;
          prop_keyed_rule_beats_natural;
          prop_peak_with_child_order_consistent
        ] );
      ( "closed forms",
        [ H.case "harpoon" test_harpoon_formula;
          H.case "chain" test_chain_postorder;
          H.case "star" test_star_postorder
        ] )
    ]
