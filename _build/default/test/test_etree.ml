(* Tests for elimination trees, column counts, symbolic factorization,
   amalgamation and assembly trees. *)

module S = Tt_sparse
module E = Tt_etree
module H = Helpers

let arb_pattern =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        let n = Tt_util.Rng.int_incl rng 1 35 in
        S.Csr.symmetrize_pattern (S.Spgen.random_sym ~rng ~n ~nnz_per_row:2.5))
      (QCheck.Gen.int_bound 1_000_000)
  in
  QCheck.make ~print:(fun a -> Printf.sprintf "n=%d" a.S.Csr.nrows) gen

(* -------------------------------------------------------- elimination tree *)

let prop_etree_oracle =
  H.qcheck ~count:150 "fast etree = dense-symbolic oracle" arb_pattern (fun a ->
      E.Elimination_tree.parents a = E.Elimination_tree.parents_dense_oracle a)

let test_etree_tridiagonal () =
  let a = S.Csr.symmetrize_pattern (S.Spgen.tridiagonal 6) in
  Alcotest.(check (array int)) "chain etree" [| 1; 2; 3; 4; 5; -1 |]
    (E.Elimination_tree.parents a)

let test_etree_forest () =
  (* block diagonal: 2 + 2 decoupled vertices -> forest with two roots *)
  let t = S.Triplet.create ~nrows:4 ~ncols:4 in
  List.iter (fun i -> S.Triplet.add t i i 1.) [ 0; 1; 2; 3 ];
  S.Triplet.add t 1 0 1.;
  S.Triplet.add t 0 1 1.;
  S.Triplet.add t 3 2 1.;
  S.Triplet.add t 2 3 1.;
  let parent = E.Elimination_tree.parents (S.Csr.of_triplet t) in
  Alcotest.(check (array int)) "forest" [| 1; -1; 3; -1 |] parent;
  Alcotest.(check (list int)) "roots" [ 1; 3 ] (E.Elimination_tree.roots parent)

let prop_etree_parent_above =
  H.qcheck "etree parents have larger indices" arb_pattern (fun a ->
      let parent = E.Elimination_tree.parents a in
      Array.for_all2 (fun p j -> p = -1 || p > j) parent
        (Array.init (Array.length parent) (fun i -> i)))

(* ----------------------------------------------------------- column counts *)

let prop_col_counts_match_symbolic =
  H.qcheck ~count:150 "counts = |symbolic structures|" arb_pattern (fun a ->
      let parent = E.Elimination_tree.parents a in
      let cc = E.Col_counts.counts a ~parent in
      let sym = E.Symbolic.run a ~parent in
      cc = Array.init a.S.Csr.nrows (E.Symbolic.col_count sym)
      && E.Col_counts.nnz_l a ~parent = E.Symbolic.nnz_l sym)

let prop_symbolic_structure =
  H.qcheck ~count:100 "symbolic columns contain the diagonal and nest into parents"
    arb_pattern (fun a ->
      let parent = E.Elimination_tree.parents a in
      let sym = E.Symbolic.run a ~parent in
      let ok = ref true in
      Array.iteri
        (fun j s ->
          (* diagonal present and first (sorted) *)
          if Array.length s = 0 || s.(0) <> j then ok := false;
          (* struct j minus j is a subset of struct parent(j) *)
          if parent.(j) >= 0 then begin
            let p = sym.E.Symbolic.col_struct.(parent.(j)) in
            let mem x = Array.exists (fun y -> y = x) p in
            Array.iter (fun i -> if i <> j && not (mem i) then ok := false) s
          end
          else
            (* a root column's structure is just {j}: anything below it
               would force a parent *)
            if Array.length s <> 1 then ok := false)
        sym.E.Symbolic.col_struct;
      !ok)

let test_col_counts_dense () =
  (* fully dense 4x4: column j of L has n - j entries *)
  let a = S.Csr.of_dense (Array.make_matrix 4 4 1.) in
  let parent = E.Elimination_tree.parents a in
  Alcotest.(check (array int)) "dense counts" [| 4; 3; 2; 1 |]
    (E.Col_counts.counts a ~parent)

(* ------------------------------------------------------------ amalgamation *)

let test_amalgamation_dense_chain () =
  (* dense matrix: etree is a chain and every merge is perfect: one group *)
  let a = S.Csr.of_dense (Array.make_matrix 5 5 1.) in
  let parent = E.Elimination_tree.parents a in
  let cc = E.Col_counts.counts a ~parent in
  let am = E.Amalgamation.run ~parent ~col_counts:cc ~limit:1 in
  Alcotest.(check int) "single supernode" 1 (Array.length am.E.Amalgamation.groups);
  let g = am.E.Amalgamation.groups.(0) in
  Alcotest.(check int) "eta" 5 g.E.Amalgamation.eta;
  Alcotest.(check int) "mu of highest" 1 g.E.Amalgamation.mu;
  Alcotest.(check (list int)) "members highest first" [ 4; 3; 2; 1; 0 ]
    g.E.Amalgamation.members

let test_amalgamation_chain_no_perfect () =
  (* tridiagonal: only the top pair is a genuine supernode; with limit 1
     nothing else merges *)
  let a = S.Csr.symmetrize_pattern (S.Spgen.tridiagonal 8) in
  let parent = E.Elimination_tree.parents a in
  let cc = E.Col_counts.counts a ~parent in
  let am = E.Amalgamation.run ~parent ~col_counts:cc ~limit:1 in
  Alcotest.(check int) "n-1 groups" 7 (Array.length am.E.Amalgamation.groups)

let test_amalgamation_limit_bounds_relaxed () =
  let a = S.Csr.symmetrize_pattern (S.Spgen.tridiagonal 40) in
  let parent = E.Elimination_tree.parents a in
  let cc = E.Col_counts.counts a ~parent in
  List.iter
    (fun limit ->
      let am = E.Amalgamation.run ~parent ~col_counts:cc ~limit in
      Array.iter
        (fun g ->
          (* relaxed merges never push a group beyond the limit except
             through perfect chains; on a tridiagonal matrix only the top
             pair is perfect, so groups are bounded by limit + 1 *)
          if g.E.Amalgamation.eta > limit + 1 then
            Alcotest.failf "limit %d: eta %d" limit g.E.Amalgamation.eta)
        am.E.Amalgamation.groups)
    [ 1; 2; 4; 16 ]

let prop_amalgamation_partition =
  H.qcheck ~count:100 "groups partition the vertices; parents are consistent"
    arb_pattern (fun a ->
      let parent = E.Elimination_tree.parents a in
      let cc = E.Col_counts.counts a ~parent in
      List.for_all
        (fun limit ->
          let am = E.Amalgamation.run ~parent ~col_counts:cc ~limit in
          let n = a.S.Csr.nrows in
          let seen = Array.make n 0 in
          Array.iter
            (fun g ->
              List.iter (fun v -> seen.(v) <- seen.(v) + 1) g.E.Amalgamation.members)
            am.E.Amalgamation.groups;
          Array.for_all (fun c -> c = 1) seen
          && Array.for_all
               (fun g ->
                 g.E.Amalgamation.eta = List.length g.E.Amalgamation.members)
               am.E.Amalgamation.groups
          && Array.for_all2
               (fun g gi ->
                 (* group parent = group of the head's etree parent *)
                 ignore gi;
                 match g.E.Amalgamation.members with
                 | [] -> false
                 | head :: _ ->
                     let p = parent.(head) in
                     if p = -1 then g.E.Amalgamation.parent = -1
                     else g.E.Amalgamation.parent = am.E.Amalgamation.group_of.(p))
               am.E.Amalgamation.groups
               (Array.init (Array.length am.E.Amalgamation.groups) (fun i -> i)))
        [ 1; 4 ])

let test_weights () =
  let g = { E.Amalgamation.members = [ 3; 2 ]; eta = 2; mu = 4; parent = -1 } in
  Alcotest.(check int) "node weight" (4 + (2 * 2 * 3)) (E.Amalgamation.node_weight g);
  Alcotest.(check int) "edge weight" 9 (E.Amalgamation.edge_weight g)

(* ---------------------------------------------------------------- assembly *)

let prop_assembly_tree_valid =
  H.qcheck ~count:80 "assembly trees are valid workflows solved by minmem"
    arb_pattern (fun a ->
      let parent = E.Elimination_tree.parents a in
      let cc = E.Col_counts.counts a ~parent in
      List.for_all
        (fun limit ->
          let am = E.Amalgamation.run ~parent ~col_counts:cc ~limit in
          let asm = E.Assembly.of_amalgamation am in
          let tree = asm.E.Assembly.tree in
          let mem, order = Tt_core.Minmem.run tree in
          Tt_core.Traversal.peak tree order = mem)
        [ 1; 16 ])

let test_assembly_forest_virtual_root () =
  let t = S.Triplet.create ~nrows:4 ~ncols:4 in
  List.iter (fun i -> S.Triplet.add t i i 1.) [ 0; 1; 2; 3 ];
  S.Triplet.add t 1 0 1.;
  S.Triplet.add t 0 1 1.;
  S.Triplet.add t 3 2 1.;
  S.Triplet.add t 2 3 1.;
  let a = S.Csr.of_triplet t in
  let parent = E.Elimination_tree.parents a in
  let cc = E.Col_counts.counts a ~parent in
  let asm = E.Assembly.of_etree_raw ~parent ~col_counts:cc in
  Alcotest.(check bool) "virtual root added" true asm.E.Assembly.virtual_root;
  let tree = asm.E.Assembly.tree in
  Alcotest.(check int) "size" 5 (Tt_core.Tree.size tree);
  Alcotest.(check int) "virtual root weightless" 0
    (tree.Tt_core.Tree.f.(tree.Tt_core.Tree.root) + tree.Tt_core.Tree.n.(tree.Tt_core.Tree.root));
  Alcotest.(check int) "virtual root marker" (-1)
    asm.E.Assembly.supernode_of_node.(tree.Tt_core.Tree.root)

let test_assembly_raw_weights () =
  let a = S.Csr.symmetrize_pattern (S.Spgen.tridiagonal 4) in
  let parent = E.Elimination_tree.parents a in
  let cc = E.Col_counts.counts a ~parent in
  let asm = E.Assembly.of_etree_raw ~parent ~col_counts:cc in
  let tree = asm.E.Assembly.tree in
  (* mu = 2 for all but the last column: f = 1, n = 3; last: f=0, n=1 *)
  Alcotest.(check int) "f of column 0" 1 tree.Tt_core.Tree.f.(0);
  Alcotest.(check int) "n of column 0" 3 tree.Tt_core.Tree.n.(0);
  Alcotest.(check int) "f of root column" 0 tree.Tt_core.Tree.f.(3);
  Alcotest.(check int) "n of root column" 1 tree.Tt_core.Tree.n.(3)


(* -------------------------------------------------------------- supernodes *)

let test_supernodes_dense () =
  (* dense matrix: one fundamental supernode *)
  let a = S.Csr.of_dense (Array.make_matrix 5 5 1.) in
  let parent = E.Elimination_tree.parents a in
  let cc = E.Col_counts.counts a ~parent in
  Alcotest.(check int) "one supernode" 1 (E.Supernodes.count ~parent ~col_counts:cc);
  Alcotest.(check (list int)) "size 5" [ 5 ] (E.Supernodes.sizes ~parent ~col_counts:cc)

let test_supernodes_tridiagonal () =
  (* tridiagonal: only the top pair merges *)
  let a = S.Csr.symmetrize_pattern (S.Spgen.tridiagonal 6) in
  let parent = E.Elimination_tree.parents a in
  let cc = E.Col_counts.counts a ~parent in
  Alcotest.(check int) "n-1 supernodes" 5 (E.Supernodes.count ~parent ~col_counts:cc)

let prop_supernodes_partition =
  H.qcheck ~count:100 "fundamental supernodes partition the columns" arb_pattern
    (fun a ->
      let parent = E.Elimination_tree.parents a in
      let cc = E.Col_counts.counts a ~parent in
      let rep = E.Supernodes.partition ~parent ~col_counts:cc in
      let sizes = E.Supernodes.sizes ~parent ~col_counts:cc in
      List.fold_left ( + ) 0 sizes = a.S.Csr.nrows
      && Array.for_all (fun r -> rep.(r) = r) rep
      (* representatives map to themselves; every member's rep is below *)
      && Array.for_all2 (fun r j -> r <= j) rep
           (Array.init (Array.length rep) (fun i -> i)))

let prop_supernodes_refine_perfect_amalgamation =
  H.qcheck ~count:80 "fundamental chains merge under perfect amalgamation"
    arb_pattern (fun a ->
      let parent = E.Elimination_tree.parents a in
      let cc = E.Col_counts.counts a ~parent in
      let rep = E.Supernodes.partition ~parent ~col_counts:cc in
      let am = E.Amalgamation.run ~parent ~col_counts:cc ~limit:1 in
      (* two columns in the same fundamental supernode always share the
         same amalgamation group (limit 1 applies perfect merges and one
         relaxed merge, so it can only merge more) *)
      let ok = ref true in
      Array.iteri
        (fun j r ->
          if am.E.Amalgamation.group_of.(j) <> am.E.Amalgamation.group_of.(r) then
            ok := false)
        rep;
      !ok)

let prop_flops_consistent =
  H.qcheck ~count:80 "flop count = sum of squared column counts" arb_pattern
    (fun a ->
      let parent = E.Elimination_tree.parents a in
      let sym = E.Symbolic.run a ~parent in
      let cc = E.Col_counts.counts a ~parent in
      E.Symbolic.factorization_flops sym
      = Array.fold_left (fun acc mu -> acc + (mu * mu)) 0 cc)

let () =
  H.run "etree"
    [ ( "elimination tree",
        [ prop_etree_oracle;
          H.case "tridiagonal" test_etree_tridiagonal;
          H.case "forest" test_etree_forest;
          prop_etree_parent_above
        ] );
      ( "column counts",
        [ prop_col_counts_match_symbolic;
          prop_symbolic_structure;
          H.case "dense" test_col_counts_dense
        ] );
      ( "amalgamation",
        [ H.case "dense chain" test_amalgamation_dense_chain;
          H.case "tridiagonal chain" test_amalgamation_chain_no_perfect;
          H.case "limit bounds" test_amalgamation_limit_bounds_relaxed;
          prop_amalgamation_partition;
          H.case "weights" test_weights
        ] );
      ( "supernodes",
        [ H.case "dense" test_supernodes_dense;
          H.case "tridiagonal" test_supernodes_tridiagonal;
          prop_supernodes_partition;
          prop_supernodes_refine_perfect_amalgamation;
          prop_flops_consistent
        ] );
      ( "assembly",
        [ prop_assembly_tree_valid;
          H.case "forest virtual root" test_assembly_forest_virtual_root;
          H.case "raw weights" test_assembly_raw_weights
        ] )
    ]
