(* Tests for the MinIO heuristics, the divisible lower bound and the
   exact oracle, plus the Theorem 2 gadget. *)

module T = Tt_core.Tree
module Io = Tt_core.Io_schedule
module M = Tt_core.Minio
module H = Helpers

(* instances where eviction is actually possible: memory between the
   working-set floor and the traversal peak *)
let arb_minio_case =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        let t = H.random_tree ~rng ~size_max:10 ~max_f:9 ~max_n:4 in
        let order =
          if Tt_util.Rng.bool rng then snd (Tt_core.Minmem.run t)
          else Tt_core.Traversal.random_order ~rng t
        in
        let floor = T.max_mem_req t in
        let peak = Tt_core.Traversal.peak t order in
        let memory = if peak <= floor then floor else Tt_util.Rng.int_incl rng floor peak in
        (t, order, memory))
      (QCheck.Gen.int_bound 1_000_000)
  in
  let print (t, o, m) =
    Printf.sprintf "%s | order %s | M=%d" (T.to_string t)
      (String.concat " " (Array.to_list (Array.map string_of_int o)))
      m
  in
  QCheck.make ~print gen

let prop_policies_feasible =
  H.qcheck ~count:300 "every policy produces a feasible schedule" arb_minio_case
    (fun (t, order, memory) ->
      List.for_all
        (fun (_, pol) ->
          match M.run t ~memory ~order pol with
          | None -> false
          | Some s -> (
              match Io.check t ~memory s with Io.Feasible _ -> true | _ -> false))
        M.all_policies)

let prop_policies_above_oracle =
  H.qcheck ~count:200 "no policy beats the exact fixed-order oracle" arb_minio_case
    (fun (t, order, memory) ->
      match Tt_core.Brute_force.min_io_given_order t ~memory order with
      | None -> false
      | Some exact ->
          List.for_all
            (fun (_, pol) ->
              match M.io_volume t ~memory ~order pol with
              | Some io -> io >= exact
              | None -> false)
            M.all_policies)

let prop_policies_above_divisible_bound =
  H.qcheck ~count:300 "no policy beats the divisible lower bound" arb_minio_case
    (fun (t, order, memory) ->
      match M.divisible_lower_bound t ~memory ~order with
      | None -> false
      | Some lb ->
          List.for_all
            (fun (_, pol) ->
              match M.io_volume t ~memory ~order pol with
              | Some io -> float_of_int io +. 1e-6 >= lb
              | None -> false)
            M.all_policies)

let prop_divisible_bound_below_oracle =
  H.qcheck ~count:200 "divisible bound is below the integral optimum" arb_minio_case
    (fun (t, order, memory) ->
      match
        ( M.divisible_lower_bound t ~memory ~order,
          Tt_core.Brute_force.min_io_given_order t ~memory order )
      with
      | Some lb, Some exact -> lb <= float_of_int exact +. 1e-6
      | _ -> false)

let prop_no_io_at_peak =
  H.qcheck "with the full peak of memory no policy performs I/O"
    (H.arb_tree_with_order ()) (fun (t, order) ->
      let peak = Tt_core.Traversal.peak t order in
      List.for_all
        (fun (_, pol) -> M.io_volume t ~memory:peak ~order pol = Some 0)
        M.all_policies)

let prop_infeasible_below_floor =
  H.qcheck "below the working-set floor every policy reports infeasible"
    (H.arb_tree_with_order ()) (fun (t, order) ->
      let floor = T.max_mem_req t in
      QCheck.assume (floor > 0);
      List.for_all
        (fun (_, pol) -> M.run t ~memory:(floor - 1) ~order pol = None)
        M.all_policies)

let test_policy_selection_behaviour () =
  (* a crafted scenario: resident candidate files of sizes 6 and 3 (by
     consumption, latest first: [6; 3]), deficit 3.
     LSNF evicts 6; First Fit evicts 3 (first file >= 3 scanning 6? no:
     6 >= 3, so First Fit evicts 6 as well); Best Fit evicts 3. *)
  let t =
    (* root 0 (f=0): children 1 (f=6), 2 (f=3), 3 (f=4 with a big child) *)
    T.make
      ~parent:[| -1; 0; 0; 0; 3 |]
      ~f:[| 0; 6; 3; 4; 10 |]
      ~n:[| 0; 0; 0; 0; 0 |]
  in
  (* order: 0, 3, 4, 2, 1: node 1 consumed last, then 2 *)
  let order = [| 0; 3; 4; 2; 1 |] in
  let peak = Tt_core.Traversal.peak t order in
  (* exec 3 usage: (6+3+4) + 10 = 23; exec 4: (6+3+10) = 19; peak 23 *)
  Alcotest.(check int) "peak" 23 (peak : int);
  let memory = 20 in
  (* at step 1 (exec 3): need n+out = 10 free; resident others 6+3 = 9,
     f_3 = 4; mavail = 20 - 13 = 7 -> deficit 3; S = [f_1=6; f_2=3] *)
  let io pol = Option.get (M.io_volume t ~memory ~order pol) in
  Alcotest.(check int) "lsnf evicts 6" 6 (io M.Lsnf);
  Alcotest.(check int) "first fit evicts 6 (first >= deficit)" 6 (io M.First_fit);
  Alcotest.(check int) "best fit evicts 3" 3 (io M.Best_fit);
  (* no file is strictly smaller than the deficit, so both fill policies
     fall back to LSNF *)
  Alcotest.(check int) "best fill falls back to lsnf" 6 (io M.Best_fill);
  Alcotest.(check int) "first fill falls back to lsnf" 6 (io M.First_fill);
  Alcotest.(check int) "best-k evicts 3" 3 (io (M.Best_k 5))

let test_policy_names () =
  Alcotest.(check string) "lsnf" "LSNF" (M.policy_name M.Lsnf);
  Alcotest.(check string) "bk" "Best 5 Comb." (M.policy_name (M.Best_k 5));
  Alcotest.(check int) "six policies" 6 (List.length M.all_policies)

let test_two_partition_gadget_yes () =
  let tree, memory, bound = Tt_core.Instances.two_partition_gadget [| 2; 1; 1 |] in
  Alcotest.(check int) "memory is 2S" 8 memory;
  Alcotest.(check int) "bound is S/2" 2 bound;
  (match Tt_core.Brute_force.min_io tree ~memory with
  | Some io -> Alcotest.(check int) "yes-instance meets the bound" bound io
  | None -> Alcotest.fail "gadget infeasible");
  (* below the bound the instance is not schedulable at this memory *)
  Alcotest.(check bool) "cannot do better" true
    (Option.get (Tt_core.Brute_force.min_io tree ~memory) >= bound)

let test_two_partition_gadget_no () =
  let tree, memory, bound = Tt_core.Instances.two_partition_gadget [| 10; 3; 3 |] in
  match Tt_core.Brute_force.min_io tree ~memory with
  | Some io ->
      if io <= bound then
        Alcotest.failf "no-instance met the bound: %d <= %d" io bound
  | None -> Alcotest.fail "gadget infeasible"

let test_gadget_structure () =
  let a = [| 4; 1; 3 |] in
  let tree, memory, bound = Tt_core.Instances.two_partition_gadget a in
  Alcotest.(check int) "2n+3 nodes" 9 (T.size tree);
  Alcotest.(check int) "memory = MemReq(root)" (T.max_mem_req tree) memory;
  Alcotest.(check int) "bound" 4 bound;
  Alcotest.check_raises "odd sum rejected"
    (Invalid_argument "Instances.two_partition_gadget: odd sum") (fun () ->
      ignore (Tt_core.Instances.two_partition_gadget [| 1; 2 |]));
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Instances.two_partition_gadget: empty") (fun () ->
      ignore (Tt_core.Instances.two_partition_gadget [||]))

let test_invalid_order_rejected () =
  let t = Tt_core.Instances.chain ~length:3 ~f:2 ~n:0 in
  Alcotest.check_raises "invalid traversal"
    (Invalid_argument "Minio.run: invalid traversal") (fun () ->
      ignore (M.run t ~memory:100 ~order:[| 2; 1; 0 |] M.Lsnf))

let prop_zero_size_files_handled =
  H.qcheck ~count:150 "policies terminate with zero-size files around"
    (QCheck.map
       (fun seed ->
         let rng = Tt_util.Rng.create seed in
         let t = H.random_tree ~rng ~size_max:10 ~max_f:4 ~max_n:3 in
         (* zero out some files *)
         let t =
           T.map_weights
             ~f:(fun i -> if i <> t.T.root && i mod 2 = 0 then 0 else t.T.f.(i))
             ~n:(fun i -> t.T.n.(i))
             t
         in
         let order = snd (Tt_core.Minmem.run t) in
         (t, order))
       QCheck.(int_bound 1_000_000))
    (fun (t, order) ->
      let floor = T.max_mem_req t in
      List.for_all
        (fun (_, pol) ->
          match M.run t ~memory:floor ~order pol with
          | None -> false
          | Some s -> (
              match Io.check t ~memory:floor s with
              | Io.Feasible _ -> true
              | _ -> false))
        M.all_policies)


(* ----------------------------------------------------- exact branch&bound *)

let prop_bb_matches_brute_force =
  H.qcheck ~count:250 "branch&bound = subset-enumeration oracle" arb_minio_case
    (fun (t, order, memory) ->
      Tt_core.Minio_exact.given_order t ~memory ~order
      = Tt_core.Brute_force.min_io_given_order t ~memory order)

let prop_bb_bounded_by_heuristics =
  H.qcheck ~count:150 "exact <= every heuristic, >= divisible bound"
    arb_minio_case (fun (t, order, memory) ->
      match Tt_core.Minio_exact.given_order t ~memory ~order with
      | None -> false
      | Some exact ->
          List.for_all
            (fun (_, pol) ->
              match M.io_volume t ~memory ~order pol with
              | Some io -> exact <= io
              | None -> false)
            M.all_policies
          && (match M.divisible_lower_bound t ~memory ~order with
             | Some lb -> float_of_int exact +. 1e-6 >= lb
             | None -> false))

let test_bb_gadget () =
  (* the branch&bound certifies the 2-partition reduction on instances
     far beyond the subset-enumeration oracle *)
  List.iter
    (fun (a, expect_bound) ->
      let tree, memory, bound = Tt_core.Instances.two_partition_gadget a in
      let _, order = Tt_core.Minmem.run tree in
      match Tt_core.Minio_exact.given_order tree ~memory ~order with
      | Some io ->
          if expect_bound then Alcotest.(check int) "meets S/2" bound io
          else if io <= bound then Alcotest.failf "no-instance met the bound"
      | None -> Alcotest.fail "gadget infeasible")
    [ ([| 5; 4; 3; 2; 1; 1 |], true);
      ([| 8; 7; 6; 5; 4; 3; 2; 1 |], true);
      ([| 13; 11; 9; 7; 5; 3; 2; 6; 8; 12 |], true);
      ([| 20; 3; 3; 2 |], false)
    ]

let test_bb_zero_when_memory_ample () =
  let t = Tt_core.Instances.harpoon ~branches:3 ~m:30 ~eps:1 in
  let mem, order = Tt_core.Minmem.run t in
  Alcotest.(check (option int)) "no io at the peak" (Some 0)
    (Tt_core.Minio_exact.given_order t ~memory:mem ~order)

let test_optimality_gap_report () =
  let t = Tt_core.Instances.two_partition_gadget [| 2; 1; 1 |] in
  let tree, memory, _ = t in
  let _, order = Tt_core.Minmem.run tree in
  let gaps = Tt_core.Minio_exact.optimality_gap tree ~memory ~order in
  Alcotest.(check int) "six rows" 6 (List.length gaps);
  List.iter
    (fun (_, io, exact) ->
      if io < exact then Alcotest.fail "heuristic below exact")
    gaps


(* -------------------------------------------------------------- portfolio *)

let prop_search_beats_fixed_sources =
  H.qcheck ~count:100 "the portfolio never loses to its fixed members"
    arb_minio_case (fun (t, _, memory) ->
      let rng = Tt_util.Rng.create 99 in
      match Tt_core.Minio_search.run ~rng t ~memory with
      | None -> T.max_mem_req t > memory
      | Some best ->
          List.for_all
            (fun order_of ->
              match
                M.io_volume t ~memory ~order:(order_of t) M.First_fit
              with
              | Some io -> best.Tt_core.Minio_search.io <= io
              | None -> true)
            [ (fun t -> snd (Tt_core.Postorder_opt.run t));
              (fun t -> snd (Tt_core.Liu_exact.run t));
              (fun t -> snd (Tt_core.Minmem.run t))
            ])

let prop_search_schedule_feasible =
  H.qcheck ~count:100 "the portfolio's winning schedule verifies" arb_minio_case
    (fun (t, _, memory) ->
      let rng = Tt_util.Rng.create 7 in
      match Tt_core.Minio_search.run ~rng t ~memory with
      | None -> true
      | Some best -> (
          match Io.check t ~memory best.Tt_core.Minio_search.schedule with
          | Io.Feasible { io; _ } -> io = best.Tt_core.Minio_search.io
          | _ -> false))

let test_search_candidates () =
  let t = Tt_core.Instances.harpoon ~branches:3 ~m:30 ~eps:1 in
  let rng = Tt_util.Rng.create 5 in
  let cands = Tt_core.Minio_search.candidates ~rng ~attempts:4 t in
  Alcotest.(check int) "3 fixed + 2x attempts" 11 (List.length cands);
  List.iter
    (fun (_, order) -> H.check_valid_traversal t order)
    cands

let () =
  H.run "minio"
    [ ( "feasibility",
        [ prop_policies_feasible;
          prop_no_io_at_peak;
          prop_infeasible_below_floor;
          prop_zero_size_files_handled;
          H.case "invalid order" test_invalid_order_rejected
        ] );
      ( "quality",
        [ prop_policies_above_oracle;
          prop_policies_above_divisible_bound;
          prop_divisible_bound_below_oracle;
          H.case "policy selection" test_policy_selection_behaviour;
          H.case "names" test_policy_names
        ] );
      ( "exact branch&bound",
        [ prop_bb_matches_brute_force;
          prop_bb_bounded_by_heuristics;
          H.case "gadget certificates" test_bb_gadget;
          H.case "zero at peak" test_bb_zero_when_memory_ample;
          H.case "gap report" test_optimality_gap_report
        ] );
      ( "portfolio search",
        [ prop_search_beats_fixed_sources;
          prop_search_schedule_feasible;
          H.case "candidates" test_search_candidates
        ] );
      ( "theorem 2 gadget",
        [ H.case "yes instance" test_two_partition_gadget_yes;
          H.case "no instance" test_two_partition_gadget_no;
          H.case "structure" test_gadget_structure
        ] )
    ]
