(* Differential tests: independently written models compared against the
   production implementations on random (including invalid) inputs. *)

module T = Tt_core.Tree
module Io = Tt_core.Io_schedule
module H = Helpers

(* ------------------------------------------------------------------------
   An independent Algorithm-2 model, written definitionally: at every step
   recompute the whole memory state from sigma and tau instead of updating
   it incrementally. Returns the I/O volume or None when the schedule is
   invalid/infeasible (no distinction). *)

let model_check tree ~memory (s : Io.t) =
  let p = T.size tree in
  if Array.length s.Io.order <> p || Array.length s.Io.tau <> p then None
  else begin
    let pos = Array.make p (-1) in
    let valid = ref true in
    Array.iteri
      (fun step i ->
        if i < 0 || i >= p || pos.(i) >= 0 then valid := false else pos.(i) <- step)
      s.Io.order;
    if not !valid then None
    else begin
      (* precedence: sigma(parent) < sigma(i) *)
      for i = 0 to p - 1 do
        let par = tree.T.parent.(i) in
        if par >= 0 && pos.(par) >= pos.(i) then valid := false
      done;
      (* tau constraints (4)-(6): produced before written, written before
         executed, root never written *)
      Array.iteri
        (fun i w ->
          if w <> Io.never then begin
            if i = tree.T.root then valid := false
            else if w < 0 || w >= p then valid := false
            else begin
              let produced_at = pos.(tree.T.parent.(i)) in
              (* a write at step w happens before the execution at step w *)
              if not (produced_at < w && w <= pos.(i)) then valid := false;
              if w = pos.(i) then
                (* writing at one's own execution step is useless but the
                   paper's constraint tau(i) < sigma(i) forbids it *)
                valid := false
            end
          end)
        s.Io.tau;
      if not !valid then None
      else begin
        (* memory constraint (7), recomputed from scratch per step *)
        let io = ref 0 in
        Array.iteri (fun i w -> if w <> Io.never then io := !io + tree.T.f.(i)) s.Io.tau;
        let feasible = ref true in
        for step = 0 to p - 1 do
          let j = s.Io.order.(step) in
          (* resident files while j executes: produced, not consumed, and
             not currently written out (out during [tau(i), sigma(i)));
             j's own file counts because it is read back for execution *)
          let resident = ref 0 in
          for i = 0 to p - 1 do
            let produced = if i = tree.T.root then true else pos.(tree.T.parent.(i)) < step in
            let consumed = pos.(i) < step in
            let out =
              s.Io.tau.(i) <> Io.never && s.Io.tau.(i) <= step && pos.(i) > step
            in
            if produced && (not consumed) && ((not out) || i = j) then
              resident := !resident + tree.T.f.(i)
          done;
          let usage = !resident + tree.T.n.(j) + T.sum_children_f tree j in
          if usage > memory then feasible := false
        done;
        if !feasible then Some !io else None
      end
    end
  end

let arb_tree_with_random_schedule =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        let t = H.random_tree ~rng ~size_max:9 ~max_f:7 ~max_n:3 in
        let p = T.size t in
        (* half the time a valid order, half a random permutation *)
        let order =
          if Tt_util.Rng.bool rng then Tt_core.Traversal.random_order ~rng t
          else begin
            let a = Array.init p (fun i -> i) in
            Tt_util.Rng.shuffle rng a;
            a
          end
        in
        (* random tau: mostly never, sometimes a random step *)
        let tau =
          Array.init p (fun _ ->
              if Tt_util.Rng.int rng 3 = 0 then Tt_util.Rng.int rng (p + 1) - 1
              else Io.never)
        in
        let memory = Tt_util.Rng.int_incl rng 0 (2 * T.max_mem_req t) in
        (t, memory, { Io.order; tau }))
      (QCheck.Gen.int_bound 10_000_000)
  in
  QCheck.make
    ~print:(fun (t, m, s) ->
      Printf.sprintf "%s M=%d order=[%s] tau=[%s]" (T.to_string t) m
        (String.concat ";" (Array.to_list (Array.map string_of_int s.Io.order)))
        (String.concat ";" (Array.to_list (Array.map string_of_int s.Io.tau))))
    gen

let prop_algorithm2_differential =
  H.qcheck ~count:800 "Io_schedule.check agrees with the definitional model"
    arb_tree_with_random_schedule (fun (t, memory, s) ->
      let model = model_check t ~memory s in
      match Io.check t ~memory s with
      | Io.Feasible { io; _ } -> model = Some io
      | Io.Infeasible_at _ | Io.Invalid _ -> model = None)

(* ------------------------------------------------------------------------
   Matrix Market fuzzing: arbitrary garbage must raise Parse_error (or
   parse), never crash otherwise. *)

let arb_garbage =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        let base =
          match Tt_util.Rng.int rng 3 with
          | 0 ->
              (* pure noise *)
              String.init (Tt_util.Rng.int rng 200) (fun _ ->
                  Char.chr (Tt_util.Rng.int_incl rng 32 126))
          | 1 ->
              (* valid header, noisy body *)
              "%%MatrixMarket matrix coordinate real general\n3 3 2\n"
              ^ String.init (Tt_util.Rng.int rng 60) (fun _ ->
                    Char.chr (Tt_util.Rng.int_incl rng 32 126))
          | _ ->
              (* a valid file with one mutated byte *)
              let s =
                Bytes.of_string
                  (Tt_sparse.Matrix_market.to_string (Tt_sparse.Spgen.grid2d 3))
              in
              if Bytes.length s > 0 then
                Bytes.set s
                  (Tt_util.Rng.int rng (Bytes.length s))
                  (Char.chr (Tt_util.Rng.int_incl rng 32 126));
              Bytes.to_string s
        in
        base)
      (QCheck.Gen.int_bound 10_000_000)
  in
  QCheck.make ~print:(fun s -> String.escaped s) gen

let prop_parser_never_crashes =
  H.qcheck ~count:500 "the MM parser only ever raises Parse_error" arb_garbage
    (fun text ->
      match Tt_sparse.Matrix_market.parse_string text with
      | _ -> true
      | exception Tt_sparse.Matrix_market.Parse_error _ -> true
      | exception _ -> false)

(* ------------------------------------------------------------------------
   Traversal profiles vs the segment calculus. *)

let prop_profile_to_segments =
  H.qcheck ~count:300 "a traversal's step profile canonicalizes consistently"
    (H.arb_tree_with_order ()) (fun (t, order) ->
      let usage = Tt_core.Traversal.profile t order in
      (* retained memory after step k: usage minus the executed node's
         execution file and its consumed input *)
      let after =
        Array.mapi
          (fun k u -> u - t.T.n.(order.(k)) - t.T.f.(order.(k)))
          usage
      in
      let prof = Tt_core.Segments.of_step_profile ~usage ~after ~order in
      Tt_core.Segments.check_canonical prof
      && Tt_core.Segments.peak prof = Tt_core.Traversal.peak t order
      && Tt_core.Segments.nodes prof = Array.to_list order
      && Tt_core.Segments.final_valley prof = 0)

let prop_liu_optimal_vs_any_traversal =
  H.qcheck ~count:300 "no traversal beats Liu's optimum"
    (H.arb_tree_with_order ()) (fun (t, order) ->
      Tt_core.Liu_exact.min_memory t <= Tt_core.Traversal.peak t order)

let () =
  H.run "differential"
    [ ("algorithm 2", [ prop_algorithm2_differential ]);
      ("matrix market fuzz", [ prop_parser_never_crashes ]);
      ( "profiles",
        [ prop_profile_to_segments; prop_liu_optimal_vs_any_traversal ] )
    ]
