(* Tests for the §III-C model variants: in/out-tree duality, the pebble
   game with replacement, and Liu's two-node model. *)

module T = Tt_core.Tree
module Tr = Tt_core.Traversal
module X = Tt_core.Transform
module H = Helpers

let prop_reverse_involution =
  H.qcheck "reversal is an involution" (H.arb_tree_with_order ())
    (fun (_, order) -> X.reverse_traversal (X.reverse_traversal order) = order)

let prop_duality_validity =
  H.qcheck "reversal maps out-tree orders to in-tree orders and back"
    (H.arb_tree_with_order ()) (fun (t, order) ->
      let rev = X.reverse_traversal order in
      X.is_valid_in_tree_order t rev
      && Tr.is_valid_order t (X.reverse_traversal rev))

let prop_duality_peak =
  H.qcheck ~count:400 "in-tree peak of sigma = out-tree peak of reversed sigma"
    (H.arb_tree_with_order ()) (fun (t, order) ->
      let rev = X.reverse_traversal order in
      X.in_tree_peak t rev = Tr.peak t order)

let prop_min_memory_in_tree =
  H.qcheck "min_memory_in_tree returns a valid optimal bottom-up traversal"
    (H.arb_tree ~size_max:14 ()) (fun t ->
      let mem, order = X.min_memory_in_tree t in
      X.is_valid_in_tree_order t order
      && X.in_tree_peak t order = mem
      && mem = Tt_core.Minmem.min_memory t)

(* ----------------------------------------------- replacement model (Fig 1) *)

(* random structure + files for the replacement model *)
let arb_replacement =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        let t = H.random_tree ~rng ~size_max:12 ~max_f:9 ~max_n:0 in
        let order = Tr.random_order ~rng t in
        (t.T.parent, t.T.f, order))
      (QCheck.Gen.int_bound 1_000_000)
  in
  QCheck.make gen

let prop_replacement_simulation =
  H.qcheck ~count:300 "Fig. 1 reduction preserves every traversal's peak"
    arb_replacement (fun (parent, f, order) ->
      let t' = X.of_replacement_model ~parent ~f in
      Tr.peak t' order = X.replacement_peak ~parent ~f ~order)

let test_replacement_figure1 () =
  (* the example of Figure 1: E with children {G, H}; the node with two
     children of sizes 1 and 2 gets n = -min(f, 3) *)
  let parent = [| -1; 0; 0 |] in
  let f = [| 2; 1; 2 |] in
  let t = X.of_replacement_model ~parent ~f in
  Alcotest.(check int) "root n" (-2) t.T.n.(0);
  Alcotest.(check int) "leaf n" 0 t.T.n.(1);
  (* peak: max(f_root, sum children) = 3, leaves then hold 3 *)
  Alcotest.(check int) "peak" 3 (Tr.peak t [| 0; 1; 2 |])

let prop_replacement_optimum_reachable =
  H.qcheck ~count:100 "optimum of the reduced instance matches the oracle"
    arb_replacement (fun (parent, f, _) ->
      let t' = X.of_replacement_model ~parent ~f in
      QCheck.assume (T.size t' <= 10);
      Tt_core.Liu_exact.min_memory t' = Tt_core.Brute_force.min_memory t')

(* ---------------------------------------------------- Liu's model (Fig 2) *)

let arb_liu_model =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        let t = H.random_tree ~rng ~size_max:10 ~max_f:1 ~max_n:0 in
        let p = T.size t in
        (* n_minus: storage after processing; n_plus must cover the
           children's storage plus the node's own *)
        let n_minus = Array.init p (fun _ -> Tt_util.Rng.int_incl rng 0 8) in
        let n_plus =
          Array.init p (fun i ->
              let child_sum =
                Array.fold_left (fun acc c -> acc + n_minus.(c)) 0 t.T.children.(i)
              in
              n_minus.(i) + child_sum + Tt_util.Rng.int_incl rng 0 5)
        in
        let order = X.reverse_traversal (Tr.random_order ~rng t) in
        (t.T.parent, n_plus, n_minus, order))
      (QCheck.Gen.int_bound 1_000_000)
  in
  QCheck.make gen

let prop_liu_model_simulation =
  H.qcheck ~count:300 "Fig. 2 reduction preserves every bottom-up peak"
    arb_liu_model (fun (parent, n_plus, n_minus, order) ->
      let t = X.of_liu_model ~parent ~n_plus ~n_minus in
      X.in_tree_peak t order = X.liu_model_peak ~parent ~n_plus ~n_minus ~order)

let test_liu_model_figure2 () =
  (* one column with one child: f = n_minus, n = n_plus - n_minus - child *)
  let parent = [| -1; 0 |] in
  let n_plus = [| 9; 5 |] and n_minus = [| 3; 2 |] in
  let t = X.of_liu_model ~parent ~n_plus ~n_minus in
  Alcotest.(check (array int)) "f = n_minus" [| 3; 2 |] t.T.f;
  Alcotest.(check int) "root n" (9 - 3 - 2) t.T.n.(0);
  Alcotest.(check int) "leaf n" (5 - 2) t.T.n.(1);
  (* bottom-up: exec 1: n_plus(1) = 5; exec 0: n_plus(0) = 9 *)
  Alcotest.(check int) "peak" 9
    (X.liu_model_peak ~parent ~n_plus ~n_minus ~order:[| 1; 0 |])

let test_liu_model_validation () =
  Alcotest.check_raises "negative n_minus"
    (Invalid_argument "Transform.of_liu_model: negative n_minus") (fun () ->
      ignore (X.of_liu_model ~parent:[| -1 |] ~n_plus:[| 1 |] ~n_minus:[| -1 |]))

let prop_exact_algorithms_handle_negative_n =
  H.qcheck ~count:150 "liu = minmem = oracle on reduced (negative-n) instances"
    arb_replacement (fun (parent, f, _) ->
      let t = X.of_replacement_model ~parent ~f in
      QCheck.assume (T.size t <= 10);
      let liu = Tt_core.Liu_exact.min_memory t in
      liu = Tt_core.Minmem.min_memory t
      && liu = Tt_core.Brute_force.min_memory t)

let () =
  H.run "transform"
    [ ( "duality",
        [ prop_reverse_involution;
          prop_duality_validity;
          prop_duality_peak;
          prop_min_memory_in_tree
        ] );
      ( "replacement model",
        [ H.case "figure 1" test_replacement_figure1;
          prop_replacement_simulation;
          prop_replacement_optimum_reachable
        ] );
      ( "liu model",
        [ H.case "figure 2" test_liu_model_figure2;
          H.case "validation" test_liu_model_validation;
          prop_liu_model_simulation;
          prop_exact_algorithms_handle_negative_n
        ] )
    ]
