(* Tests for the sparse matrix formats. *)

module S = Tt_sparse
module H = Helpers

let arb_matrix ?(n_max = 15) ?(sym = false) () =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        let n = Tt_util.Rng.int_incl rng 1 n_max in
        let m = Tt_util.Rng.int_incl rng 1 n_max in
        let m = if sym then n else m in
        let t = S.Triplet.create ~nrows:n ~ncols:m in
        let entries = Tt_util.Rng.int_incl rng 0 (3 * n) in
        for _ = 1 to entries do
          let i = Tt_util.Rng.int rng n and j = Tt_util.Rng.int rng m in
          let v = float_of_int (Tt_util.Rng.int_incl rng 1 9) in
          S.Triplet.add t i j v;
          if sym && i <> j then S.Triplet.add t j i v
        done;
        S.Csr.of_triplet t)
      (QCheck.Gen.int_bound 1_000_000)
  in
  QCheck.make
    ~print:(fun a ->
      Printf.sprintf "%dx%d nnz=%d" a.S.Csr.nrows a.S.Csr.ncols (S.Csr.nnz a))
    gen

(* ---------------------------------------------------------------- triplet *)

let test_triplet_basics () =
  let t = S.Triplet.create ~nrows:3 ~ncols:2 in
  S.Triplet.add t 0 1 2.5;
  S.Triplet.add t 2 0 1.0;
  Alcotest.(check int) "nnz" 2 (S.Triplet.nnz t);
  Alcotest.(check int) "nrows" 3 (S.Triplet.nrows t);
  let entries = S.Triplet.entries t in
  Alcotest.(check int) "entries kept in order" 2 (Array.length entries);
  Alcotest.(check bool) "first" true (entries.(0) = (0, 1, 2.5));
  let tt = S.Triplet.transpose t in
  Alcotest.(check bool) "transposed entry" true ((S.Triplet.entries tt).(0) = (1, 0, 2.5));
  Alcotest.check_raises "oob" (Invalid_argument "Triplet.add: entry (3,0) out of bounds")
    (fun () -> S.Triplet.add t 3 0 1.)

let test_csr_duplicates () =
  let t = S.Triplet.create ~nrows:2 ~ncols:2 in
  S.Triplet.add t 0 0 1.;
  S.Triplet.add t 0 0 2.;
  S.Triplet.add t 1 0 5.;
  let a = S.Csr.of_triplet t in
  Alcotest.(check int) "duplicates summed" 2 (S.Csr.nnz a);
  Alcotest.(check (float 0.)) "sum" 3. (S.Csr.get a 0 0);
  Alcotest.(check (float 0.)) "other" 5. (S.Csr.get a 1 0);
  Alcotest.(check (float 0.)) "missing" 0. (S.Csr.get a 1 1)

let prop_dense_round_trip =
  H.qcheck "of_dense / to_dense round trip" (arb_matrix ()) (fun a ->
      let d = S.Csr.to_dense a in
      let b = S.Csr.of_dense d in
      S.Csr.to_dense b = d)

let prop_transpose_involution =
  H.qcheck "transpose is an involution" (arb_matrix ()) (fun a ->
      let att = S.Csr.transpose (S.Csr.transpose a) in
      S.Csr.equal_pattern a att && att.S.Csr.values = a.S.Csr.values)

let prop_transpose_dense =
  H.qcheck "transpose matches the dense transpose" (arb_matrix ()) (fun a ->
      let d = S.Csr.to_dense a in
      let dt = S.Csr.to_dense (S.Csr.transpose a) in
      let ok = ref true in
      Array.iteri
        (fun i row -> Array.iteri (fun j v -> if dt.(j).(i) <> v then ok := false) row)
        d;
      !ok)

let prop_rows_sorted =
  H.qcheck "column indices sorted within each row" (arb_matrix ()) (fun a ->
      let ok = ref true in
      for i = 0 to a.S.Csr.nrows - 1 do
        for k = a.S.Csr.row_ptr.(i) + 1 to a.S.Csr.row_ptr.(i + 1) - 1 do
          if a.S.Csr.col_idx.(k - 1) >= a.S.Csr.col_idx.(k) then ok := false
        done
      done;
      !ok)

let prop_symmetrize_pattern =
  H.qcheck "symmetrized pattern is symmetric with a full diagonal"
    (arb_matrix ~sym:false ()) (fun a ->
      QCheck.assume (a.S.Csr.nrows = a.S.Csr.ncols);
      let p = S.Csr.symmetrize_pattern a in
      S.Csr.is_symmetric p
      && (let full_diag = ref true in
          for i = 0 to p.S.Csr.nrows - 1 do
            if S.Csr.get p i i = 0. then full_diag := false
          done;
          !full_diag)
      && Array.for_all (fun v -> v = 1.) p.S.Csr.values)

let prop_symmetrize_values_spd =
  H.qcheck "symmetrize_values gives a strictly diagonally dominant matrix"
    (arb_matrix ()) (fun a ->
      QCheck.assume (a.S.Csr.nrows = a.S.Csr.ncols);
      let m = S.Csr.symmetrize_values a in
      S.Csr.is_symmetric ~tol:1e-12 m
      &&
      let ok = ref true in
      for i = 0 to m.S.Csr.nrows - 1 do
        let diag = ref 0. and off = ref 0. in
        Seq.iter
          (fun (j, v) -> if j = i then diag := v else off := !off +. Float.abs v)
          (S.Csr.row m i);
        if !diag <= !off then ok := false
      done;
      !ok)

let test_lower () =
  let d = [| [| 1.; 2.; 0. |]; [| 3.; 4.; 5. |]; [| 6.; 0.; 7. |] |] in
  let a = S.Csr.of_dense d in
  let l = S.Csr.lower a in
  Alcotest.(check int) "lower nnz" 5 (S.Csr.nnz l);
  let ls = S.Csr.lower ~strict:true a in
  Alcotest.(check int) "strict lower nnz" 2 (S.Csr.nnz ls)

let prop_permute_sym =
  H.qcheck "permute_sym matches the dense permutation"
    (QCheck.pair (arb_matrix ~sym:true ()) (QCheck.int_bound 1_000_000))
    (fun (a, seed) ->
      let n = a.S.Csr.nrows in
      let rng = Tt_util.Rng.create seed in
      let perm = Array.init n (fun i -> i) in
      Tt_util.Rng.shuffle rng perm;
      let b = S.Csr.permute_sym a perm in
      let d = S.Csr.to_dense a and bd = S.Csr.to_dense b in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if bd.(i).(j) <> d.(perm.(i)).(perm.(j)) then ok := false
        done
      done;
      !ok)

let test_permute_validation () =
  let a = S.Csr.of_dense [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  Alcotest.check_raises "bad perm" (Invalid_argument "Csr.permute_sym: not a permutation")
    (fun () -> ignore (S.Csr.permute_sym a [| 0; 0 |]))

let prop_mul_vec =
  H.qcheck "mul_vec matches the dense product" (arb_matrix ()) (fun a ->
      let x = Array.init a.S.Csr.ncols (fun i -> float_of_int ((i mod 5) + 1)) in
      let y = S.Csr.mul_vec a x in
      let d = S.Csr.to_dense a in
      let expect =
        Array.map (fun row -> Array.fold_left ( +. ) 0. (Array.mapi (fun j v -> v *. x.(j)) row)) d
      in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-9) y expect)


(* -------------------------------------------------------------- iterative *)

let prop_cg_solves_spd =
  H.qcheck ~count:60 "cg solves SPD systems"
    (QCheck.map
       (fun seed ->
         let rng = Tt_util.Rng.create seed in
         S.Csr.symmetrize_values
           (S.Spgen.random_sym ~rng ~n:(Tt_util.Rng.int_incl rng 1 40) ~nnz_per_row:2.5))
       QCheck.(int_bound 1_000_000))
    (fun a ->
      let n = a.S.Csr.nrows in
      let x0 = Array.init n (fun i -> float_of_int ((i mod 5) - 2)) in
      let b = S.Csr.mul_vec a x0 in
      let r = S.Iterative.cg ~tol:1e-12 a b in
      r.S.Iterative.converged
      && Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) r.S.Iterative.x x0)

let test_cg_edge_cases () =
  let a = S.Csr.of_dense [| [| 4. |] |] in
  let r = S.Iterative.cg a [| 8. |] in
  Alcotest.(check (float 1e-9)) "1x1" 2. r.S.Iterative.x.(0);
  let rz = S.Iterative.cg a [| 0. |] in
  Alcotest.(check bool) "zero rhs" true
    (rz.S.Iterative.converged && rz.S.Iterative.x.(0) = 0. && rz.S.Iterative.iterations = 0);
  Alcotest.check_raises "dimension" (Invalid_argument "Iterative.cg: dimension mismatch")
    (fun () -> ignore (S.Iterative.cg a [| 1.; 2. |]))

let test_cg_grid_iterations () =
  (* CG on the grid Laplacian converges well before 4n iterations *)
  let a = S.Spgen.grid2d 12 in
  let b = Array.init a.S.Csr.nrows (fun i -> float_of_int (i mod 3)) in
  let r = S.Iterative.cg a b in
  Alcotest.(check bool) "converged" true r.S.Iterative.converged;
  Alcotest.(check bool) "fast" true (r.S.Iterative.iterations < a.S.Csr.nrows)

let () =
  H.run "sparse"
    [ ( "triplet",
        [ H.case "basics" test_triplet_basics; H.case "duplicates" test_csr_duplicates ] );
      ( "csr",
        [ prop_dense_round_trip;
          prop_transpose_involution;
          prop_transpose_dense;
          prop_rows_sorted;
          H.case "lower" test_lower;
          prop_mul_vec
        ] );
      ( "iterative",
        [ prop_cg_solves_spd;
          H.case "edge cases" test_cg_edge_cases;
          H.case "grid convergence" test_cg_grid_iterations
        ] );
      ( "symmetry",
        [ prop_symmetrize_pattern;
          prop_symmetrize_values_spd;
          prop_permute_sym;
          H.case "permute validation" test_permute_validation
        ] )
    ]
