(* End-to-end integration tests: the full paper pipeline on real (small)
   corpora, asserting the qualitative shapes the paper reports. *)

module T = Tt_core.Tree
module W = Tt_workloads
module H = Helpers

let corpus = lazy (W.Dataset.small_corpus ~seed:42)

let test_postorder_near_optimal_on_assembly_trees () =
  (* paper Table I: postorder optimal in ~96% of assembly trees; on the
     small corpus demand at least 60% and mild worst-case excess *)
  let insts = Lazy.force corpus in
  let ratios =
    List.map
      (fun (i : W.Dataset.instance) ->
        let po = Tt_core.Postorder_opt.best_memory i.W.Dataset.tree in
        let opt = Tt_core.Liu_exact.min_memory i.W.Dataset.tree in
        float_of_int po /. float_of_int opt)
      insts
  in
  let optimal = List.filter (fun r -> r <= 1.0 +. 1e-12) ratios in
  let frac = float_of_int (List.length optimal) /. float_of_int (List.length ratios) in
  if frac < 0.6 then Alcotest.failf "postorder optimal on only %.0f%%" (100. *. frac);
  List.iter (fun r -> if r > 2.0 then Alcotest.failf "excess ratio %.2f" r) ratios

let test_exact_algorithms_agree_on_corpus () =
  List.iter
    (fun (i : W.Dataset.instance) ->
      let liu = Tt_core.Liu_exact.min_memory i.W.Dataset.tree in
      let mm = Tt_core.Minmem.min_memory i.W.Dataset.tree in
      if liu <> mm then Alcotest.failf "%s: liu %d <> minmem %d" i.W.Dataset.name liu mm)
    (Lazy.force corpus)

let test_minio_pipeline_on_corpus () =
  (* for every instance: plan with First Fit at a tight budget, check the
     schedule with Algorithm 2, compare with the divisible bound *)
  List.iter
    (fun (i : W.Dataset.instance) ->
      let tree = i.W.Dataset.tree in
      let opt, order = Tt_core.Minmem.run tree in
      let floor = T.max_mem_req tree in
      if opt > floor then begin
        let memory = floor + ((opt - floor) / 3) in
        match Tt_core.Minio.run tree ~memory ~order Tt_core.Minio.First_fit with
        | None -> Alcotest.failf "%s: infeasible at %d" i.W.Dataset.name memory
        | Some sched -> (
            match Tt_core.Io_schedule.check tree ~memory sched with
            | Tt_core.Io_schedule.Feasible { io; _ } -> (
                match Tt_core.Minio.divisible_lower_bound tree ~memory ~order with
                | Some lb ->
                    if float_of_int io +. 1e-6 < lb then
                      Alcotest.failf "%s: io %d below bound %.1f" i.W.Dataset.name io lb
                | None -> Alcotest.fail "bound infeasible")
            | _ -> Alcotest.failf "%s: invalid schedule" i.W.Dataset.name)
      end)
    (Lazy.force corpus)

let test_matrix_to_factorization_roundtrip () =
  (* full numeric pipeline through Matrix Market serialization *)
  let a0 = Tt_sparse.Spgen.grid2d 9 in
  let text = Tt_sparse.Matrix_market.to_string ~symmetry:Tt_sparse.Matrix_market.Symmetric a0 in
  let _, t = Tt_sparse.Matrix_market.parse_string text in
  let a = Tt_sparse.Csr.of_triplet t in
  let pattern = Tt_sparse.Csr.symmetrize_pattern a in
  let perm = Tt_ordering.Min_degree.order (Tt_ordering.Graph_adj.of_pattern pattern) in
  let a = Tt_sparse.Csr.permute_sym a perm in
  let pattern = Tt_sparse.Csr.symmetrize_pattern a in
  let parent = Tt_etree.Elimination_tree.parents pattern in
  let sym = Tt_etree.Symbolic.run pattern ~parent in
  let r =
    Tt_multifrontal.Factor.run a sym
      ~schedule:(Tt_multifrontal.Factor.default_schedule sym)
  in
  Alcotest.(check bool) "residual" true
    (Tt_multifrontal.Factor.residual_norm a r.Tt_multifrontal.Factor.l < 1e-9)

let test_minmem_schedule_helps_multifrontal () =
  (* the optimal schedule's measured memory never exceeds the postorder
     schedule's, and matches the model exactly for both *)
  let a = Tt_sparse.Spgen.grid2d_9pt 8 in
  let pattern = Tt_sparse.Csr.symmetrize_pattern a in
  let parent = Tt_etree.Elimination_tree.parents pattern in
  let sym = Tt_etree.Symbolic.run pattern ~parent in
  let n = pattern.Tt_sparse.Csr.nrows in
  let cc = Array.init n (Tt_etree.Symbolic.col_count sym) in
  let asm = Tt_etree.Assembly.of_etree_raw ~parent ~col_counts:cc in
  let tree = asm.Tt_etree.Assembly.tree in
  let to_schedule order =
    let rev = Tt_core.Transform.reverse_traversal order in
    if asm.Tt_etree.Assembly.virtual_root then
      Array.of_list (List.filter (fun x -> x < n) (Array.to_list rev))
    else rev
  in
  let spd = Tt_sparse.Csr.symmetrize_values a in
  let measure order =
    (Tt_multifrontal.Factor.run spd sym ~schedule:(to_schedule order))
      .Tt_multifrontal.Factor.peak_words
  in
  let po_mem, po_order = Tt_core.Postorder_opt.run tree in
  let mm_mem, mm_order = Tt_core.Minmem.run tree in
  Alcotest.(check int) "postorder model = measured" po_mem (measure po_order);
  Alcotest.(check int) "minmem model = measured" mm_mem (measure mm_order);
  Alcotest.(check bool) "optimal <= postorder" true (mm_mem <= po_mem)

let test_theorem1_and_2_coexist () =
  (* the two headline results, in one run *)
  let ratio = Tt_core.Instances.theorem1_ratio ~branches:3 ~levels:4 ~m:300 ~eps:1 in
  Alcotest.(check bool) "theorem 1 ratio > 3" true (ratio > 3.0);
  let tree, memory, bound = Tt_core.Instances.two_partition_gadget [| 2; 1; 1 |] in
  Alcotest.(check (option int)) "theorem 2 bound met" (Some bound)
    (Tt_core.Brute_force.min_io tree ~memory)

let test_cross_model_consistency () =
  (* a random corpus tree, its reversal, and the multifrontal direction
     all agree on the optimum *)
  List.iter
    (fun (i : W.Dataset.instance) ->
      let tree = i.W.Dataset.tree in
      let mem, in_order = Tt_core.Transform.min_memory_in_tree tree in
      Alcotest.(check int)
        (i.W.Dataset.name ^ " duality")
        mem
        (Tt_core.Transform.in_tree_peak tree in_order))
    (Lazy.force corpus)

let () =
  H.run "integration"
    [ ( "paper shapes",
        [ H.case "postorder near-optimal on assembly trees"
            test_postorder_near_optimal_on_assembly_trees;
          H.case "exact algorithms agree" test_exact_algorithms_agree_on_corpus;
          H.case "random weights vs postorder (see workloads suite)" (fun () -> ());
          H.case "theorems 1 and 2" test_theorem1_and_2_coexist
        ] );
      ( "pipelines",
        [ H.case "minio end to end" test_minio_pipeline_on_corpus;
          H.case "matrix market to factorization" test_matrix_to_factorization_roundtrip;
          H.case "schedules drive the multifrontal solver"
            test_minmem_schedule_helps_multifrontal;
          H.case "in-tree duality on corpus" test_cross_model_consistency
        ] )
    ]
