(* Tests for the synthetic matrix generators. *)

module S = Tt_sparse
module H = Helpers

let spd_check name a =
  Alcotest.(check bool) (name ^ " symmetric") true (S.Csr.is_symmetric ~tol:1e-12 a);
  for i = 0 to a.S.Csr.nrows - 1 do
    let diag = ref 0. and off = ref 0. in
    Seq.iter
      (fun (j, v) -> if j = i then diag := v else off := !off +. Float.abs v)
      (S.Csr.row a i);
    if !diag <= !off then Alcotest.failf "%s: row %d not diagonally dominant" name i
  done

let connected a =
  let g = Tt_ordering.Graph_adj.of_pattern (S.Csr.symmetrize_pattern a) in
  snd (Tt_ordering.Graph_adj.components g) = 1

let test_grid2d () =
  let a = S.Spgen.grid2d 5 in
  Alcotest.(check int) "n" 25 a.S.Csr.nrows;
  spd_check "grid2d" a;
  Alcotest.(check bool) "connected" true (connected a);
  (* interior vertex has 4 neighbors *)
  let g = Tt_ordering.Graph_adj.of_pattern (S.Csr.symmetrize_pattern a) in
  Alcotest.(check int) "interior degree" 4 (Tt_ordering.Graph_adj.degree g 12);
  Alcotest.(check int) "corner degree" 2 (Tt_ordering.Graph_adj.degree g 0)

let test_grid2d_rect () =
  let a = S.Spgen.grid2d_rect 3 7 in
  Alcotest.(check int) "n" 21 a.S.Csr.nrows;
  spd_check "rect" a;
  Alcotest.(check bool) "connected" true (connected a);
  (* a 1xk rectangle is the tridiagonal chain *)
  let chain = S.Spgen.grid2d_rect 1 9 in
  Alcotest.(check bool) "1xk = tridiagonal" true
    (S.Csr.equal_pattern chain (S.Spgen.tridiagonal 9))

let test_grid9 () =
  let a = S.Spgen.grid2d_9pt 5 in
  spd_check "grid9" a;
  let g = Tt_ordering.Graph_adj.of_pattern (S.Csr.symmetrize_pattern a) in
  Alcotest.(check int) "interior degree" 8 (Tt_ordering.Graph_adj.degree g 12)

let test_grid3d () =
  let a = S.Spgen.grid3d 3 in
  Alcotest.(check int) "n" 27 a.S.Csr.nrows;
  spd_check "grid3d" a;
  let g = Tt_ordering.Graph_adj.of_pattern (S.Csr.symmetrize_pattern a) in
  Alcotest.(check int) "center degree" 6 (Tt_ordering.Graph_adj.degree g 13)

let test_tridiagonal () =
  let a = S.Spgen.tridiagonal 8 in
  spd_check "tridiagonal" a;
  Alcotest.(check int) "nnz" (8 + (2 * 7)) (S.Csr.nnz a);
  Alcotest.(check bool) "connected" true (connected a)

let test_banded () =
  let rng = Tt_util.Rng.create 5 in
  let a = S.Spgen.banded ~rng ~n:50 ~bandwidth:4 ~fill:0.5 in
  spd_check "banded" a;
  Alcotest.(check bool) "connected" true (connected a);
  (* entries stay within the band *)
  for i = 0 to 49 do
    Seq.iter
      (fun (j, _) -> if abs (i - j) > 4 then Alcotest.failf "entry (%d,%d) outside band" i j)
      (S.Csr.row a i)
  done

let test_random_sym () =
  let rng = Tt_util.Rng.create 6 in
  let a = S.Spgen.random_sym ~rng ~n:60 ~nnz_per_row:3.0 in
  spd_check "random_sym" a;
  Alcotest.(check bool) "connected" true (connected a)

let test_block_arrow () =
  let a = S.Spgen.block_arrow ~n:60 ~blocks:4 ~border:5 in
  spd_check "block_arrow" a;
  (* border rows are dense *)
  let g = Tt_ordering.Graph_adj.of_pattern (S.Csr.symmetrize_pattern a) in
  Alcotest.(check int) "border degree" 59 (Tt_ordering.Graph_adj.degree g 59);
  Alcotest.check_raises "bad shape" (Invalid_argument "Spgen.block_arrow: bad shape")
    (fun () -> ignore (S.Spgen.block_arrow ~n:10 ~blocks:0 ~border:1))

let test_power_law () =
  let rng = Tt_util.Rng.create 7 in
  let a = S.Spgen.power_law ~rng ~n:80 ~edges_per_node:2 in
  spd_check "power_law" a;
  let g = Tt_ordering.Graph_adj.of_pattern (S.Csr.symmetrize_pattern a) in
  let degrees = Array.init 80 (Tt_ordering.Graph_adj.degree g) in
  Array.sort compare degrees;
  (* heavy tail: the max degree should clearly exceed the median *)
  Alcotest.(check bool) "heavy tail" true (degrees.(79) >= 2 * degrees.(40))

let test_determinism () =
  let m1 = S.Spgen.banded ~rng:(Tt_util.Rng.create 3) ~n:30 ~bandwidth:3 ~fill:0.5 in
  let m2 = S.Spgen.banded ~rng:(Tt_util.Rng.create 3) ~n:30 ~bandwidth:3 ~fill:0.5 in
  Alcotest.(check bool) "same seed, same matrix" true
    (S.Csr.equal_pattern m1 m2 && m1.S.Csr.values = m2.S.Csr.values)

let () =
  H.run "spgen"
    [ ( "stencils",
        [ H.case "grid2d" test_grid2d;
          H.case "grid2d_rect" test_grid2d_rect;
          H.case "grid9" test_grid9;
          H.case "grid3d" test_grid3d;
          H.case "tridiagonal" test_tridiagonal
        ] );
      ( "random families",
        [ H.case "banded" test_banded;
          H.case "random_sym" test_random_sym;
          H.case "block_arrow" test_block_arrow;
          H.case "power_law" test_power_law;
          H.case "determinism" test_determinism
        ] )
    ]
