(* Tests for the numeric multifrontal factorization, its memory
   accounting, and the out-of-core simulator. *)

module S = Tt_sparse
module MF = Tt_multifrontal
module H = Helpers

let arb_spd =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        let n = Tt_util.Rng.int_incl rng 1 25 in
        S.Csr.symmetrize_values (S.Spgen.random_sym ~rng ~n ~nnz_per_row:2.2))
      (QCheck.Gen.int_bound 1_000_000)
  in
  QCheck.make ~print:(fun a -> Printf.sprintf "n=%d" a.S.Csr.nrows) gen

let symbolic_of a =
  let pattern = S.Csr.symmetrize_pattern a in
  let parent = Tt_etree.Elimination_tree.parents pattern in
  Tt_etree.Symbolic.run pattern ~parent

(* ------------------------------------------------------------------ front *)

let test_front_ops () =
  let f = MF.Front.create [| 2; 5; 9 |] in
  Alcotest.(check int) "size" 3 (MF.Front.size f);
  Alcotest.(check int) "words" 9 (MF.Front.words f);
  MF.Front.set f 0 0 4.;
  MF.Front.add f 1 0 2.;
  MF.Front.add f 0 1 2.;
  MF.Front.set f 1 1 5.;
  MF.Front.set f 2 2 1.;
  Alcotest.(check (float 0.)) "get" 2. (MF.Front.get f 1 0)

let test_eliminate_pivot () =
  (* front [[4,2],[2,5]]: l = [2,1], schur = 5 - 1 = 4 *)
  let f = MF.Front.create [| 0; 1 |] in
  MF.Front.set f 0 0 4.;
  MF.Front.set f 1 0 2.;
  MF.Front.set f 0 1 2.;
  MF.Front.set f 1 1 5.;
  let l, cb = MF.Front.eliminate_pivot f in
  Alcotest.(check (float 1e-12)) "pivot" 2. l.(0);
  Alcotest.(check (float 1e-12)) "below" 1. l.(1);
  Alcotest.(check int) "cb size" 1 (MF.Front.size cb);
  Alcotest.(check (float 1e-12)) "schur" 4. (MF.Front.get cb 0 0)

let test_eliminate_nonspd () =
  let f = MF.Front.create [| 0 |] in
  MF.Front.set f 0 0 (-1.);
  Alcotest.check_raises "non-positive pivot"
    (Failure "Front.eliminate_pivot: non-positive pivot") (fun () ->
      ignore (MF.Front.eliminate_pivot f))

let test_extend_add () =
  let big = MF.Front.create [| 1; 3; 7 |] in
  let cb = MF.Front.create [| 1; 7 |] in
  MF.Front.set cb 0 0 2.;
  MF.Front.set cb 1 0 3.;
  MF.Front.set cb 0 1 3.;
  MF.Front.set cb 1 1 4.;
  MF.Front.extend_add ~into:big cb;
  Alcotest.(check (float 0.)) "scattered (1,1)" 2. (MF.Front.get big 0 0);
  Alcotest.(check (float 0.)) "scattered (7,1)" 3. (MF.Front.get big 2 0);
  Alcotest.(check (float 0.)) "scattered (7,7)" 4. (MF.Front.get big 2 2);
  Alcotest.(check (float 0.)) "untouched" 0. (MF.Front.get big 1 1);
  let bad = MF.Front.create [| 2 |] in
  Alcotest.check_raises "missing row"
    (Invalid_argument "Front.extend_add: contribution row missing from front")
    (fun () -> MF.Front.extend_add ~into:big bad)

(* ----------------------------------------------------------------- factor *)

let prop_factorization_correct =
  H.qcheck ~count:100 "L L^T reproduces A (postorder schedule)" arb_spd (fun a ->
      let sym = symbolic_of a in
      let schedule = MF.Factor.default_schedule sym in
      let r = MF.Factor.run a sym ~schedule in
      MF.Factor.residual_norm a r.MF.Factor.l < 1e-8)

let prop_factorization_any_schedule =
  H.qcheck ~count:60 "factorization correct under any topological schedule"
    (QCheck.pair arb_spd QCheck.(int_bound 1_000_000)) (fun (a, seed) ->
      let sym = symbolic_of a in
      (* random bottom-up schedule via the assembly tree *)
      let n = a.S.Csr.nrows in
      let cc = Array.init n (Tt_etree.Symbolic.col_count sym) in
      let asm = Tt_etree.Assembly.of_etree_raw ~parent:sym.Tt_etree.Symbolic.parent ~col_counts:cc in
      let rng = Tt_util.Rng.create seed in
      let out_order = Tt_core.Traversal.random_order ~rng asm.Tt_etree.Assembly.tree in
      let rev = Tt_core.Transform.reverse_traversal out_order in
      let schedule =
        if asm.Tt_etree.Assembly.virtual_root then
          Array.of_list (List.filter (fun x -> x < n) (Array.to_list rev))
        else rev
      in
      let r = MF.Factor.run a sym ~schedule in
      MF.Factor.residual_norm a r.MF.Factor.l < 1e-8)

let prop_solve =
  H.qcheck ~count:80 "solve recovers the solution" arb_spd (fun a ->
      let sym = symbolic_of a in
      let r = MF.Factor.run a sym ~schedule:(MF.Factor.default_schedule sym) in
      let n = a.S.Csr.nrows in
      let x0 = Array.init n (fun i -> float_of_int ((i mod 7) - 3)) in
      let b = S.Csr.mul_vec a x0 in
      let x = MF.Factor.solve r.MF.Factor.l b in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) x x0)

let prop_memory_matches_tree_model =
  H.qcheck ~count:100 "measured peak = tree-model peak (word for word)" arb_spd
    (fun a ->
      let sym = symbolic_of a in
      let n = a.S.Csr.nrows in
      let schedule = MF.Factor.default_schedule sym in
      let r = MF.Factor.run a sym ~schedule in
      let cc = Array.init n (Tt_etree.Symbolic.col_count sym) in
      let asm = Tt_etree.Assembly.of_etree_raw ~parent:sym.Tt_etree.Symbolic.parent ~col_counts:cc in
      let tree = asm.Tt_etree.Assembly.tree in
      let p = Tt_core.Tree.size tree in
      let order =
        if asm.Tt_etree.Assembly.virtual_root then
          Array.init p (fun k -> if k = 0 then p - 1 else schedule.(n - k))
        else Tt_core.Transform.reverse_traversal schedule
      in
      Tt_core.Traversal.peak tree order = r.MF.Factor.peak_words)

let test_schedule_validation () =
  let a = S.Csr.symmetrize_values (S.Spgen.tridiagonal 4) in
  let sym = symbolic_of a in
  Alcotest.check_raises "child after parent"
    (Invalid_argument "Factor.run: child after parent") (fun () ->
      ignore (MF.Factor.run a sym ~schedule:[| 3; 2; 1; 0 |]));
  Alcotest.check_raises "wrong length" (Invalid_argument "Factor.run: wrong schedule length")
    (fun () -> ignore (MF.Factor.run a sym ~schedule:[| 0 |]))

let test_default_schedule_is_postorder () =
  let a = S.Csr.symmetrize_values (S.Spgen.grid2d 5) in
  let sym = symbolic_of a in
  let schedule = MF.Factor.default_schedule sym in
  let seen = Array.make (Array.length schedule) false in
  Array.iter
    (fun j ->
      Array.iteri
        (fun c p -> if p = j && not seen.(c) then Alcotest.fail "child not yet done")
        sym.Tt_etree.Symbolic.parent;
      seen.(j) <- true)
    schedule

(* -------------------------------------------------------------------- ooc *)

let prop_ooc_planned_equals_measured =
  H.qcheck ~count:60 "planned I/O = measured I/O; factor stays correct" arb_spd
    (fun a ->
      let sym = symbolic_of a in
      let schedule = MF.Factor.default_schedule sym in
      let full = MF.Factor.run a sym ~schedule in
      let floor = MF.Ooc_sim.min_in_core_words sym in
      List.for_all
        (fun memory_words ->
          match
            MF.Ooc_sim.run a sym ~memory_words ~policy:Tt_core.Minio.First_fit ~schedule
          with
          | Error _ -> false
          | Ok r ->
              r.MF.Ooc_sim.planned_io = r.MF.Ooc_sim.measured_io
              && r.MF.Ooc_sim.peak_in_core <= memory_words
                 (* the in-core peak accounting never exceeds the budget *)
              && MF.Factor.residual_norm a r.MF.Ooc_sim.factor.MF.Factor.l < 1e-8)
        [ floor; (floor + full.MF.Factor.peak_words) / 2; full.MF.Factor.peak_words ])

let prop_ooc_no_io_at_full_memory =
  H.qcheck ~count:60 "no I/O when the budget covers the in-core peak" arb_spd
    (fun a ->
      let sym = symbolic_of a in
      let schedule = MF.Factor.default_schedule sym in
      let full = MF.Factor.run a sym ~schedule in
      match
        MF.Ooc_sim.run a sym ~memory_words:full.MF.Factor.peak_words
          ~policy:Tt_core.Minio.Lsnf ~schedule
      with
      | Ok r -> r.MF.Ooc_sim.measured_io = 0
      | Error _ -> false)

let test_ooc_below_floor_fails () =
  let a = S.Csr.symmetrize_values (S.Spgen.grid2d 4) in
  let sym = symbolic_of a in
  let schedule = MF.Factor.default_schedule sym in
  let floor = MF.Ooc_sim.min_in_core_words sym in
  match
    MF.Ooc_sim.run a sym ~memory_words:(floor - 1) ~policy:Tt_core.Minio.First_fit
      ~schedule
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should be infeasible below the working-set floor"

let test_grid_factorization () =
  (* larger deterministic case with an ordering pipeline *)
  let a = S.Spgen.grid2d 12 in
  let pattern = S.Csr.symmetrize_pattern a in
  let perm = Tt_ordering.Min_degree.order (Tt_ordering.Graph_adj.of_pattern pattern) in
  let a = S.Csr.permute_sym a perm in
  let sym = symbolic_of a in
  let r = MF.Factor.run a sym ~schedule:(MF.Factor.default_schedule sym) in
  Alcotest.(check bool) "residual small" true (MF.Factor.residual_norm a r.MF.Factor.l < 1e-9)


(* ------------------------------------------------------------ supernodal *)

let supernodal_setup a limit =
  let sym = symbolic_of a in
  let n = a.S.Csr.nrows in
  let cc = Array.init n (Tt_etree.Symbolic.col_count sym) in
  let amal =
    Tt_etree.Amalgamation.run ~parent:sym.Tt_etree.Symbolic.parent ~col_counts:cc
      ~limit
  in
  (sym, amal, MF.Supernodal.plan sym amal)

let prop_supernodal_front_sizes =
  H.qcheck ~count:80 "front dimension is exactly eta + mu - 1 at every level"
    arb_spd (fun a ->
      List.for_all
        (fun limit ->
          let _, amal, plan = supernodal_setup a limit in
          Array.for_all2
            (fun (g : Tt_etree.Amalgamation.group) rows ->
              Array.length rows = g.Tt_etree.Amalgamation.eta + g.Tt_etree.Amalgamation.mu - 1)
            amal.Tt_etree.Amalgamation.groups plan.MF.Supernodal.rows)
        [ 1; 4; 16 ])

let prop_supernodal_correct =
  H.qcheck ~count:60 "supernodal L L^T reproduces A at every amalgamation level"
    arb_spd (fun a ->
      List.for_all
        (fun limit ->
          let sym, _, plan = supernodal_setup a limit in
          let schedule = MF.Supernodal.default_schedule plan in
          let r = MF.Supernodal.run a sym plan ~schedule in
          MF.Factor.residual_norm a r.MF.Factor.l < 1e-8)
        [ 1; 2; 16 ])

let prop_supernodal_memory_matches_amalgamated_tree =
  H.qcheck ~count:60
    "supernodal peak = amalgamated assembly-tree model (the paper's weights)"
    arb_spd (fun a ->
      List.for_all
        (fun limit ->
          let sym, amal, plan = supernodal_setup a limit in
          let schedule = MF.Supernodal.default_schedule plan in
          let r = MF.Supernodal.run a sym plan ~schedule in
          let asm = Tt_etree.Assembly.of_amalgamation amal in
          let tree = asm.Tt_etree.Assembly.tree in
          let p = Tt_core.Tree.size tree in
          let gcount = Array.length amal.Tt_etree.Amalgamation.groups in
          let order =
            if asm.Tt_etree.Assembly.virtual_root then
              Array.init p (fun k -> if k = 0 then p - 1 else schedule.(gcount - k))
            else Tt_core.Transform.reverse_traversal schedule
          in
          Tt_core.Traversal.peak tree order = r.MF.Factor.peak_words)
        [ 1; 4; 16 ])

let test_supernodal_front_words () =
  let a = S.Csr.symmetrize_values (S.Spgen.grid2d 6) in
  let _, amal, plan = supernodal_setup a 4 in
  Array.iteri
    (fun g (grp : Tt_etree.Amalgamation.group) ->
      Alcotest.(check int) "front words = node + edge weight"
        (Tt_etree.Amalgamation.node_weight grp + Tt_etree.Amalgamation.edge_weight grp)
        (MF.Supernodal.front_words plan g))
    amal.Tt_etree.Amalgamation.groups

let test_supernodal_schedule_validation () =
  let a = S.Csr.symmetrize_values (S.Spgen.tridiagonal 6) in
  let sym, _, plan = supernodal_setup a 2 in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Supernodal.run: wrong schedule length") (fun () ->
      ignore (MF.Supernodal.run a sym plan ~schedule:[| 0 |]))


(* ------------------------------------------------------------- stack sim *)

let prop_stack_works_on_postorders =
  H.qcheck ~count:60 "the CB stack suffices exactly for postorder schedules"
    arb_spd (fun a ->
      let sym = symbolic_of a in
      let schedule = MF.Factor.default_schedule sym in
      MF.Stack_sim.is_postorder_schedule sym schedule
      &&
      match MF.Stack_sim.run a sym ~schedule with
      | Ok r ->
          let plain = MF.Factor.run a sym ~schedule in
          r.MF.Stack_sim.factor.MF.Factor.peak_words = plain.MF.Factor.peak_words
          && MF.Factor.residual_norm a r.MF.Stack_sim.factor.MF.Factor.l < 1e-8
      | Error _ -> false)

let test_stack_fails_on_interleaved_schedule () =
  (* two independent 2-column chains joined by a root; interleaving the
     chains breaks the LIFO discipline *)
  let t = S.Triplet.create ~nrows:5 ~ncols:5 in
  List.iter (fun i -> S.Triplet.add t i i 1.) [ 0; 1; 2; 3; 4 ];
  List.iter
    (fun (i, j) ->
      S.Triplet.add t i j (-0.25);
      S.Triplet.add t j i (-0.25))
    [ (0, 1); (2, 3); (1, 4); (3, 4) ];
  let a = S.Csr.symmetrize_values (S.Csr.of_triplet t) in
  let sym = symbolic_of a in
  (* interleaved: 0 2 1 3 4 -- valid bottom-up, not a postorder *)
  let schedule = [| 0; 2; 1; 3; 4 |] in
  Alcotest.(check bool) "not a postorder" false
    (MF.Stack_sim.is_postorder_schedule sym schedule);
  (match MF.Stack_sim.run a sym ~schedule with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stack discipline should break");
  (* but the plain factorization handles it fine *)
  let r = MF.Factor.run a sym ~schedule in
  Alcotest.(check bool) "plain solver fine" true
    (MF.Factor.residual_norm a r.MF.Factor.l < 1e-10);
  (* and the postorder version works on the stack *)
  let po = MF.Factor.default_schedule sym in
  Alcotest.(check bool) "postorder ok" true
    (match MF.Stack_sim.run a sym ~schedule:po with Ok _ -> true | Error _ -> false)

let prop_stack_detects_non_postorders =
  H.qcheck ~count:60 "is_postorder agrees with the LIFO simulation" arb_spd
    (fun a ->
      let sym = symbolic_of a in
      let n = a.S.Csr.nrows in
      (* random bottom-up schedule *)
      let cc = Array.init n (Tt_etree.Symbolic.col_count sym) in
      let asm =
        Tt_etree.Assembly.of_etree_raw ~parent:sym.Tt_etree.Symbolic.parent
          ~col_counts:cc
      in
      let rng = Tt_util.Rng.create 123 in
      let out_order = Tt_core.Traversal.random_order ~rng asm.Tt_etree.Assembly.tree in
      let rev = Tt_core.Transform.reverse_traversal out_order in
      let schedule =
        if asm.Tt_etree.Assembly.virtual_root then
          Array.of_list (List.filter (fun x -> x < n) (Array.to_list rev))
        else rev
      in
      let lifo_ok =
        match MF.Stack_sim.run a sym ~schedule with Ok _ -> true | Error _ -> false
      in
      lifo_ok = MF.Stack_sim.is_postorder_schedule sym schedule)


let prop_ooc_supernodal =
  H.qcheck ~count:40 "out-of-core supernodal: planned = measured, factor correct"
    arb_spd (fun a ->
      List.for_all
        (fun limit ->
          let sym, amal, plan = supernodal_setup a limit in
          let schedule = MF.Supernodal.default_schedule plan in
          let full = MF.Supernodal.run a sym plan ~schedule in
          let asm = Tt_etree.Assembly.of_amalgamation amal in
          let floor = Tt_core.Tree.max_mem_req asm.Tt_etree.Assembly.tree in
          List.for_all
            (fun memory_words ->
              match
                MF.Ooc_sim.run_supernodal a sym amal ~memory_words
                  ~policy:Tt_core.Minio.First_fit ~schedule
              with
              | Error _ -> false
              | Ok r ->
                  r.MF.Ooc_sim.planned_io = r.MF.Ooc_sim.measured_io
                  && MF.Factor.residual_norm a r.MF.Ooc_sim.factor.MF.Factor.l < 1e-8
                  && (memory_words < full.MF.Factor.peak_words
                     || r.MF.Ooc_sim.measured_io = 0))
            [ floor; full.MF.Factor.peak_words ])
        [ 1; 4 ])


let prop_supernodal_factor_equals_columnwise =
  H.qcheck ~count:40 "supernodal L = per-column L on the factor's pattern"
    arb_spd (fun a ->
      let sym, _, plan = supernodal_setup a 4 in
      let super =
        MF.Supernodal.run a sym plan
          ~schedule:(MF.Supernodal.default_schedule plan)
      in
      let plain = MF.Factor.run a sym ~schedule:(MF.Factor.default_schedule sym) in
      (* the Cholesky factor is unique: on every position of the exact
         symbolic pattern the two solvers must agree; the supernodal
         factor may additionally store explicit (near-)zeros *)
      let ok = ref true in
      Array.iteri
        (fun j s ->
          Array.iter
            (fun i ->
              let x = S.Csr.get super.MF.Factor.l i j in
              let y = S.Csr.get plain.MF.Factor.l i j in
              if Float.abs (x -. y) > 1e-8 then ok := false)
            s)
        sym.Tt_etree.Symbolic.col_struct;
      !ok)

let () =
  H.run "multifrontal"
    [ ( "front",
        [ H.case "ops" test_front_ops;
          H.case "eliminate pivot" test_eliminate_pivot;
          H.case "non-SPD pivot" test_eliminate_nonspd;
          H.case "extend-add" test_extend_add
        ] );
      ( "factorization",
        [ prop_factorization_correct;
          prop_factorization_any_schedule;
          prop_solve;
          H.case "grid with ordering" test_grid_factorization;
          H.case "schedule validation" test_schedule_validation;
          H.case "default schedule" test_default_schedule_is_postorder
        ] );
      ("memory model", [ prop_memory_matches_tree_model ]);
      ( "supernodal",
        [ prop_supernodal_front_sizes;
          prop_supernodal_correct;
          prop_supernodal_memory_matches_amalgamated_tree;
          H.case "front words = paper weights" test_supernodal_front_words;
          prop_ooc_supernodal;
          prop_supernodal_factor_equals_columnwise;
          H.case "schedule validation" test_supernodal_schedule_validation
        ] );
      ( "stack",
        [ prop_stack_works_on_postorders;
          H.case "interleaved schedule breaks LIFO" test_stack_fails_on_interleaved_schedule;
          prop_stack_detects_non_postorders
        ] );
      ( "out of core",
        [ prop_ooc_planned_equals_measured;
          prop_ooc_no_io_at_full_memory;
          H.case "below floor" test_ooc_below_floor_fails
        ] )
    ]
