(* Tests for the experiment corpus and the §VI-E random re-weighting. *)

module W = Tt_workloads
module T = Tt_core.Tree
module H = Helpers

let test_small_corpus () =
  let insts = W.Dataset.small_corpus ~seed:42 in
  Alcotest.(check bool) "non-empty" true (List.length insts >= 12);
  (* names unique *)
  let names = List.map (fun (i : W.Dataset.instance) -> i.W.Dataset.name) insts in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  (* trees are non-trivial and well-formed (construction validates) *)
  List.iter
    (fun (i : W.Dataset.instance) ->
      if T.size i.W.Dataset.tree < 2 then
        Alcotest.failf "%s degenerate (%d nodes)" i.W.Dataset.name
          (T.size i.W.Dataset.tree))
    insts

let test_corpus_deterministic () =
  let c1 = W.Dataset.small_corpus ~seed:42 in
  let c2 = W.Dataset.small_corpus ~seed:42 in
  List.iter2
    (fun (a : W.Dataset.instance) (b : W.Dataset.instance) ->
      Alcotest.(check string) "name" a.W.Dataset.name b.W.Dataset.name;
      Alcotest.(check bool) "tree" true (T.equal a.W.Dataset.tree b.W.Dataset.tree))
    c1 c2

let test_matrices_scale () =
  let ms1 = W.Dataset.matrices ~scale:1 ~seed:1 () in
  Alcotest.(check bool) "enough families" true (List.length ms1 >= 10);
  List.iter
    (fun (name, m) ->
      if m.Tt_sparse.Csr.nrows < 200 then
        Alcotest.failf "%s too small (%d)" name m.Tt_sparse.Csr.nrows)
    ms1

let test_amalgamation_monotone () =
  (* more amalgamation -> fewer tree nodes, on a grid instance *)
  let m = Tt_sparse.Spgen.grid2d 15 in
  let sizes =
    List.map
      (fun am ->
        T.size
          (W.Pipeline.assembly_tree ~ordering:W.Pipeline.Min_degree ~amalgamation:am m)
            .Tt_etree.Assembly.tree)
      [ 1; 2; 4; 16 ]
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) (Printf.sprintf "sizes %s" (String.concat ">=" (List.map string_of_int sizes)))
    true (non_increasing sizes)

let test_pipeline_orderings () =
  let m = Tt_sparse.Spgen.grid2d 8 in
  List.iter
    (fun o ->
      let asm = W.Pipeline.assembly_tree ~ordering:o m in
      let tree = asm.Tt_etree.Assembly.tree in
      let mem, order = Tt_core.Minmem.run tree in
      Alcotest.(check int)
        (W.Pipeline.ordering_name o)
        mem
        (Tt_core.Traversal.peak tree order))
    (W.Pipeline.Natural :: W.Pipeline.all_orderings)

let test_pipeline_stats () =
  let m = Tt_sparse.Spgen.grid2d 6 in
  let asm = W.Pipeline.assembly_tree m in
  let s = W.Pipeline.stats asm in
  Alcotest.(check bool) "mentions node count" true
    (String.length s > 0 && String.sub s 0 2 = "p=")

(* ---------------------------------------------------------- reweighting *)

let test_reweight_ranges () =
  let rng = Tt_util.Rng.create 5 in
  let base =
    (W.Pipeline.assembly_tree (Tt_sparse.Spgen.grid2d 12)).Tt_etree.Assembly.tree
  in
  let t = W.Random_weights.reweight ~rng base in
  let p = T.size t in
  Alcotest.(check (array int)) "structure preserved" base.T.parent t.T.parent;
  Alcotest.(check int) "root f zero" 0 t.T.f.(t.T.root);
  Array.iteri
    (fun i fi ->
      if i <> t.T.root && (fi < 1 || fi > p) then
        Alcotest.failf "edge weight %d out of [1,%d]" fi p)
    t.T.f;
  let max_node = max 1 (p / 500) in
  Array.iter
    (fun ni ->
      if ni < 1 || ni > max_node then
        Alcotest.failf "node weight %d out of [1,%d]" ni max_node)
    t.T.n

let test_reweight_corpus_variants () =
  let insts = W.Dataset.small_corpus ~seed:42 in
  let rw = W.Random_weights.corpus ~variants:2 ~seed:9 insts in
  Alcotest.(check int) "2x instances" (2 * List.length insts) (List.length rw);
  (* deterministic *)
  let rw2 = W.Random_weights.corpus ~variants:2 ~seed:9 insts in
  List.iter2
    (fun (a : W.Dataset.instance) (b : W.Dataset.instance) ->
      Alcotest.(check bool) "same trees" true (T.equal a.W.Dataset.tree b.W.Dataset.tree))
    rw rw2

let test_reweighting_hurts_postorder () =
  (* the §VI-E observation: random weights make postorder non-optimal on
     a decent fraction of structures *)
  let insts = W.Dataset.small_corpus ~seed:42 in
  let rw = W.Random_weights.corpus ~variants:2 ~seed:11 insts in
  let non_opt =
    List.filter
      (fun (i : W.Dataset.instance) ->
        Tt_core.Postorder_opt.best_memory i.W.Dataset.tree
        > Tt_core.Liu_exact.min_memory i.W.Dataset.tree)
      rw
  in
  let frac = float_of_int (List.length non_opt) /. float_of_int (List.length rw) in
  if frac < 0.1 then
    Alcotest.failf "only %.0f%% non-optimal on random weights" (100. *. frac)

let () =
  H.run "workloads"
    [ ( "dataset",
        [ H.case "small corpus" test_small_corpus;
          H.case "deterministic" test_corpus_deterministic;
          H.case "matrix families" test_matrices_scale
        ] );
      ( "pipeline",
        [ H.case "amalgamation monotone" test_amalgamation_monotone;
          H.case "orderings" test_pipeline_orderings;
          H.case "stats" test_pipeline_stats
        ] );
      ( "random weights",
        [ H.case "ranges" test_reweight_ranges;
          H.case "variants" test_reweight_corpus_variants;
          H.case "hurts postorder" test_reweighting_hurts_postorder
        ] )
    ]
