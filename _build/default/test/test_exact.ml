(* The central correctness suite: Liu's exact algorithm and MinMem agree
   with each other, with the exponential oracle, and their traversals
   realize the claimed peaks. *)

module T = Tt_core.Tree
module Tr = Tt_core.Traversal
module H = Helpers

let check_one ?(oracle = true) t =
  let liu_mem, liu_order = Tt_core.Liu_exact.run t in
  let mm_mem, mm_order = Tt_core.Minmem.run t in
  if not (Tr.is_valid_order t liu_order) then Alcotest.fail "liu order invalid";
  if not (Tr.is_valid_order t mm_order) then Alcotest.fail "minmem order invalid";
  Alcotest.(check int) "liu peak realized" liu_mem (Tr.peak t liu_order);
  Alcotest.(check int) "minmem peak realized" mm_mem (Tr.peak t mm_order);
  Alcotest.(check int) "liu = minmem" liu_mem mm_mem;
  let po = Tt_core.Postorder_opt.best_memory t in
  if po < liu_mem then Alcotest.failf "postorder %d beats optimum %d" po liu_mem;
  if oracle && T.size t <= 16 then
    Alcotest.(check int) "oracle agrees" (Tt_core.Brute_force.min_memory t) liu_mem

let prop_agreement_small =
  H.qcheck ~count:500 "liu = minmem = oracle on random trees (<= 10 nodes)"
    (H.arb_tree ~size_max:10 ~max_f:12 ~max_n:6 ()) (fun t ->
      check_one t;
      true)

let prop_agreement_medium =
  H.qcheck ~count:150 "liu = minmem = oracle on random trees (<= 16 nodes)"
    (H.arb_tree ~size_max:16 ~max_f:30 ~max_n:15 ()) (fun t ->
      check_one t;
      true)

let prop_agreement_zero_weights =
  H.qcheck ~count:200 "agreement with many zero files"
    (H.arb_tree ~size_max:12 ~max_f:2 ~max_n:1 ()) (fun t ->
      check_one t;
      true)

let prop_agreement_large_no_oracle =
  H.qcheck ~count:30 "liu = minmem on larger random trees"
    (H.arb_tree ~size_max:400 ~max_f:50 ~max_n:25 ()) (fun t ->
      check_one ~oracle:false t;
      true)

let test_known_shapes () =
  List.iter check_one
    [ Tt_core.Instances.chain ~length:8 ~f:4 ~n:2;
      Tt_core.Instances.star ~branches:6 ~f_root:3 ~f_leaf:2 ~n:1;
      Tt_core.Instances.complete_binary ~levels:3 ~f:3 ~n:1;
      Tt_core.Instances.caterpillar ~length:4 ~leaves_per_node:2 ~f:2 ~n:1;
      Tt_core.Instances.harpoon ~branches:3 ~m:9 ~eps:1
    ]

let test_chain_closed_form () =
  (* chain: only one traversal, peak = f + n + f (except at the leaf) *)
  let t = Tt_core.Instances.chain ~length:10 ~f:7 ~n:3 in
  Alcotest.(check int) "chain optimum" 17 (Tt_core.Liu_exact.min_memory t);
  Alcotest.(check int) "chain minmem" 17 (Tt_core.Minmem.min_memory t)

let test_star_closed_form () =
  (* star: the root execution dominates: f_root + n + b * f_leaf *)
  let t = Tt_core.Instances.star ~branches:5 ~f_root:4 ~f_leaf:3 ~n:2 in
  Alcotest.(check int) "star optimum" (4 + 2 + 15) (Tt_core.Liu_exact.min_memory t)

let test_harpoon_closed_forms () =
  (* Theorem 1 formulas, exercised on several parameter sets *)
  List.iter
    (fun (b, levels, m, eps) ->
      let t = Tt_core.Instances.harpoon_nested ~branches:b ~levels ~m ~eps in
      let po = Tt_core.Postorder_opt.best_memory t in
      let opt = Tt_core.Liu_exact.min_memory t in
      Alcotest.(check int)
        (Printf.sprintf "PO b=%d L=%d" b levels)
        (m + eps + (levels * (b - 1) * (m / b)))
        po;
      (* the optimum only grows by small files per level *)
      if opt > m + eps + (2 * levels * b * eps) then
        Alcotest.failf "optimum too large: %d" opt;
      Alcotest.(check int) "minmem agrees" opt (Tt_core.Minmem.min_memory t))
    [ (2, 1, 100, 1); (3, 2, 300, 1); (3, 3, 300, 2); (4, 2, 400, 1) ]

let test_theorem1_ratio_grows () =
  let r l = Tt_core.Instances.theorem1_ratio ~branches:3 ~levels:l ~m:300 ~eps:1 in
  let r1 = r 1 and r3 = r 3 and r5 = r 5 in
  if not (r1 < r3 && r3 < r5) then
    Alcotest.failf "ratio not increasing: %.3f %.3f %.3f" r1 r3 r5;
  if r5 < 4.0 then Alcotest.failf "ratio too small at L=5: %.3f" r5

let test_single_node () =
  let t = T.make ~parent:[| -1 |] ~f:[| 5 |] ~n:[| 2 |] in
  Alcotest.(check int) "liu" 7 (Tt_core.Liu_exact.min_memory t);
  Alcotest.(check int) "minmem" 7 (Tt_core.Minmem.min_memory t);
  Alcotest.(check int) "oracle" 7 (Tt_core.Brute_force.min_memory t)

let test_deep_chain_fast () =
  (* 100k-node chain: both algorithms must stay near-linear, and MinMem's
     recursive Explore must survive the depth (OCaml 5 grows the stack) *)
  let t = Tt_core.Instances.chain ~length:100_000 ~f:3 ~n:1 in
  let (liu, _), dt_liu = Tt_util.Timer.time (fun () -> Tt_core.Liu_exact.run t) in
  Alcotest.(check int) "deep chain optimum" 7 liu;
  if dt_liu > 5. then Alcotest.failf "liu too slow on a chain: %.1fs" dt_liu;
  let (mm, order), dt_mm = Tt_util.Timer.time (fun () -> Tt_core.Minmem.run t) in
  Alcotest.(check int) "minmem deep chain" 7 mm;
  Alcotest.(check int) "full traversal" 100_000 (Array.length order);
  if dt_mm > 5. then Alcotest.failf "minmem too slow on a chain: %.1fs" dt_mm

let test_wide_star_fast () =
  let t = Tt_core.Instances.star ~branches:100_000 ~f_root:1 ~f_leaf:1 ~n:0 in
  let (mm, order), dt = Tt_util.Timer.time (fun () -> Tt_core.Minmem.run t) in
  Alcotest.(check int) "wide star optimum" 100_001 mm;
  Alcotest.(check int) "order length" 100_001 (Array.length order);
  if dt > 5. then Alcotest.failf "minmem too slow on a star: %.1fs" dt

let prop_liu_profiles_canonical =
  H.qcheck "liu keeps every subtree profile canonical" (H.arb_tree ~size_max:20 ())
    (fun t ->
      let profs = Tt_core.Liu_exact.profiles t in
      Array.for_all Tt_core.Segments.check_canonical profs
      && Array.for_all2
           (fun prof fi -> Tt_core.Segments.final_valley prof = fi)
           profs t.T.f)

let prop_liu_profile_matches_simulation =
  H.qcheck "root profile peak equals the traversal peak" (H.arb_tree ~size_max:20 ())
    (fun t ->
      let profs = Tt_core.Liu_exact.profiles t in
      let mem, _ = Tt_core.Liu_exact.run t in
      Tt_core.Segments.peak profs.(t.T.root) = mem)

let test_minmem_iterations_positive () =
  let t = Tt_core.Instances.harpoon ~branches:3 ~m:30 ~eps:1 in
  let rounds = Tt_core.Minmem.iterations t in
  if rounds < 1 then Alcotest.failf "rounds %d < 1" rounds

let () =
  H.run "exact"
    [ ( "agreement",
        [ prop_agreement_small;
          prop_agreement_medium;
          prop_agreement_zero_weights;
          prop_agreement_large_no_oracle;
          H.case "known shapes" test_known_shapes
        ] );
      ( "closed forms",
        [ H.case "chain" test_chain_closed_form;
          H.case "star" test_star_closed_form;
          H.case "harpoons" test_harpoon_closed_forms;
          H.case "theorem 1 ratio" test_theorem1_ratio_grows;
          H.case "single node" test_single_node
        ] );
      ( "scalability",
        [ H.case "deep chain" test_deep_chain_fast; H.case "wide star" test_wide_star_fast ] );
      ( "profiles",
        [ prop_liu_profiles_canonical;
          prop_liu_profile_matches_simulation;
          H.case "minmem iterations" test_minmem_iterations_positive
        ] )
    ]
