(* Tests for the one-call planning API. *)

module T = Tt_core.Tree
module H = Helpers

let prop_plan_validates =
  H.qcheck ~count:200 "plans are feasible and classified correctly"
    (QCheck.map
       (fun seed ->
         let rng = Tt_util.Rng.create seed in
         let t = H.random_tree ~rng ~size_max:14 ~max_f:10 ~max_n:5 in
         let floor = T.max_mem_req t in
         let opt = Tt_core.Minmem.min_memory t in
         let memory =
           match Tt_util.Rng.int rng 3 with
           | 0 -> max 0 (floor - 1 - Tt_util.Rng.int rng 3)
           | 1 -> if opt > floor then Tt_util.Rng.int_incl rng floor (opt - 1) else floor
           | _ -> opt + Tt_util.Rng.int rng 5
         in
         (t, memory))
       QCheck.(int_bound 1_000_000))
    (fun (t, memory) ->
      let floor = T.max_mem_req t in
      let opt = Tt_core.Minmem.min_memory t in
      match Tt_core.Planner.plan t ~memory with
      | Tt_core.Planner.Infeasible { floor = f } -> memory < floor && f = floor
      | Tt_core.Planner.In_core { order; peak } ->
          peak = opt && peak <= memory && Tt_core.Traversal.peak t order = peak
      | Tt_core.Planner.Out_of_core { schedule; io; lower_bound; _ } -> (
          memory >= floor && memory < opt
          &&
          match Tt_core.Io_schedule.check t ~memory schedule with
          | Tt_core.Io_schedule.Feasible { io = io'; _ } ->
              io = io' && float_of_int io +. 1e-6 >= lower_bound
          | _ -> false))

let test_plan_in_core () =
  let t = Tt_core.Instances.harpoon ~branches:3 ~m:30 ~eps:1 in
  match Tt_core.Planner.plan t ~memory:33 with
  | Tt_core.Planner.In_core { peak; _ } -> Alcotest.(check int) "peak" 33 peak
  | p -> Alcotest.failf "expected in-core, got: %s" (Tt_core.Planner.describe p)

let test_plan_out_of_core () =
  let t = Tt_core.Instances.harpoon ~branches:3 ~m:30 ~eps:1 in
  match Tt_core.Planner.plan t ~memory:32 with
  | Tt_core.Planner.Out_of_core { io; _ } ->
      Alcotest.(check bool) "some io" true (io > 0)
  | p -> Alcotest.failf "expected out-of-core, got: %s" (Tt_core.Planner.describe p)

let test_plan_infeasible () =
  let t = Tt_core.Instances.star ~branches:4 ~f_root:5 ~f_leaf:5 ~n:0 in
  match Tt_core.Planner.plan t ~memory:3 with
  | Tt_core.Planner.Infeasible { floor } ->
      Alcotest.(check int) "floor" (T.max_mem_req t) floor
  | p -> Alcotest.failf "expected infeasible, got: %s" (Tt_core.Planner.describe p)

let test_describe () =
  let t = Tt_core.Instances.chain ~length:3 ~f:2 ~n:0 in
  let d = Tt_core.Planner.describe (Tt_core.Planner.plan t ~memory:100) in
  Alcotest.(check bool) "mentions in-core" true
    (String.length d >= 7 && String.sub d 0 7 = "in-core")

let () =
  H.run "planner"
    [ ( "plan",
        [ prop_plan_validates;
          H.case "in-core" test_plan_in_core;
          H.case "out-of-core" test_plan_out_of_core;
          H.case "infeasible" test_plan_infeasible;
          H.case "describe" test_describe
        ] )
    ]
