(* Tests for Algorithm 1: the in-core traversal checker and traversal
   utilities. *)

module T = Tt_core.Tree
module Tr = Tt_core.Traversal
module H = Helpers

let tiny () = T.make ~parent:[| -1; 0; 0; 2 |] ~f:[| 5; 2; 3; 4 |] ~n:[| 1; 0; 2; 0 |]

(* Hand-checked memory usages for the tiny tree, order 0 1 2 3:
   step 0 (exec 0): ready {0}=5, n=1, out 2+3=5           -> 11
   step 1 (exec 1): ready {1,2}=5, n=0, out 0              -> 5
   step 2 (exec 2): ready {2}=3, n=2, out 4                -> 9
   step 3 (exec 3): ready {3}=4, n=0, out 0                -> 4 *)

let test_profile_hand_checked () =
  let t = tiny () in
  Alcotest.(check (array int)) "profile" [| 11; 5; 9; 4 |]
    (Tr.profile t [| 0; 1; 2; 3 |]);
  Alcotest.(check int) "peak" 11 (Tr.peak t [| 0; 1; 2; 3 |]);
  (* the other valid order: 0 2 1 3 and 0 2 3 1 etc. *)
  Alcotest.(check int) "alt order peak" 11 (Tr.peak t [| 0; 2; 3; 1 |])

let test_check_feasible () =
  let t = tiny () in
  (match Tr.check t ~memory:11 [| 0; 1; 2; 3 |] with
  | Tr.Feasible peak -> Alcotest.(check int) "peak from check" 11 peak
  | _ -> Alcotest.fail "expected feasible");
  match Tr.check t ~memory:10 [| 0; 1; 2; 3 |] with
  | Tr.Infeasible_at { step; needed; available } ->
      Alcotest.(check int) "fails at step" 0 step;
      Alcotest.(check int) "needed" 11 needed;
      Alcotest.(check int) "available" 10 available
  | _ -> Alcotest.fail "expected infeasible"

let test_check_invalid () =
  let t = tiny () in
  let expect_invalid reason order =
    match Tr.check t ~memory:1000 order with
    | Tr.Invalid_order { reason = r; _ } -> Alcotest.(check string) "reason" reason r
    | _ -> Alcotest.fail "expected invalid"
  in
  expect_invalid "wrong length" [| 0; 1 |];
  expect_invalid "parent not yet executed" [| 1; 0; 2; 3 |];
  expect_invalid "duplicate node" [| 0; 1; 1; 3 |];
  expect_invalid "node out of range" [| 0; 9; 2; 3 |];
  expect_invalid "parent not yet executed" [| 0; 3; 2; 1 |]

let test_single_node () =
  let t = T.make ~parent:[| -1 |] ~f:[| 7 |] ~n:[| 3 |] in
  Alcotest.(check int) "singleton peak" 10 (Tr.peak t [| 0 |]);
  match Tr.check t ~memory:9 [| 0 |] with
  | Tr.Infeasible_at _ -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_top_down_order () =
  let t = tiny () in
  H.check_valid_traversal t (Tr.top_down_order t)

let prop_random_orders_valid =
  H.qcheck "random_order always yields a valid traversal"
    (H.arb_tree_with_order ~size_max:20 ()) (fun (t, order) ->
      Tr.is_valid_order t order)

let prop_profile_peak_agree =
  H.qcheck "peak = max of profile" (H.arb_tree_with_order ()) (fun (t, order) ->
      let prof = Tr.profile t order in
      Tr.peak t order = Array.fold_left max min_int prof)

let prop_peak_lower_bound =
  H.qcheck "peak >= max mem req along any traversal" (H.arb_tree_with_order ())
    (fun (t, order) -> Tr.peak t order >= T.max_mem_req t)

let test_all_orders_counts () =
  (* chain: exactly one traversal *)
  let chain = Tt_core.Instances.chain ~length:5 ~f:1 ~n:0 in
  Alcotest.(check int) "chain has one order" 1 (List.length (Tr.all_orders chain));
  (* star with b leaves: b! traversals *)
  let star = Tt_core.Instances.star ~branches:4 ~f_root:1 ~f_leaf:1 ~n:0 in
  Alcotest.(check int) "star 4 has 24 orders" 24 (List.length (Tr.all_orders star));
  (* every enumerated order is valid and distinct *)
  let t = T.make ~parent:[| -1; 0; 0; 1 |] ~f:[| 1; 1; 1; 1 |] ~n:[| 0; 0; 0; 0 |] in
  let orders = Tr.all_orders t in
  Alcotest.(check int) "binary shape count" 3 (List.length orders);
  List.iter (fun o -> H.check_valid_traversal t o) orders;
  Alcotest.(check int) "distinct" (List.length orders)
    (List.length (List.sort_uniq compare orders))

let test_all_orders_guard () =
  let big = Tt_core.Instances.chain ~length:11 ~f:1 ~n:0 in
  Alcotest.check_raises "guard" (Invalid_argument "Traversal.all_orders: tree too large")
    (fun () -> ignore (Tr.all_orders big))

let prop_zero_memory_trees =
  H.qcheck "all-zero weights are feasible with zero memory"
    (H.arb_tree ~max_f:0 ~max_n:0 ()) (fun t ->
      let t0 = T.map_weights ~f:(fun _ -> 0) ~n:(fun _ -> 0) t in
      Tr.peak t0 (Tr.top_down_order t0) = 0)

let () =
  H.run "traversal"
    [ ( "checker",
        [ H.case "hand-checked profile" test_profile_hand_checked;
          H.case "feasible/infeasible" test_check_feasible;
          H.case "invalid orders" test_check_invalid;
          H.case "single node" test_single_node
        ] );
      ( "orders",
        [ H.case "top-down valid" test_top_down_order;
          H.case "all_orders counts" test_all_orders_counts;
          H.case "all_orders guard" test_all_orders_guard;
          prop_random_orders_valid
        ] );
      ( "properties",
        [ prop_profile_peak_agree; prop_peak_lower_bound; prop_zero_memory_trees ] )
    ]
