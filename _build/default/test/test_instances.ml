(* Tests for the instance constructions. *)

module T = Tt_core.Tree
module H = Helpers

let test_chain () =
  let t = Tt_core.Instances.chain ~length:4 ~f:2 ~n:1 in
  Alcotest.(check int) "size" 4 (T.size t);
  Alcotest.(check int) "height" 3 (T.height t);
  Alcotest.(check (array int)) "parents" [| -1; 0; 1; 2 |] t.T.parent;
  Alcotest.check_raises "length 0" (Invalid_argument "Instances.chain: length < 1")
    (fun () -> ignore (Tt_core.Instances.chain ~length:0 ~f:1 ~n:0))

let test_star () =
  let t = Tt_core.Instances.star ~branches:5 ~f_root:7 ~f_leaf:2 ~n:3 in
  Alcotest.(check int) "size" 6 (T.size t);
  Alcotest.(check int) "root f" 7 t.T.f.(0);
  Alcotest.(check int) "leaf f" 2 t.T.f.(3);
  Alcotest.(check int) "degree" 5 (Array.length t.T.children.(0))

let test_caterpillar () =
  let t = Tt_core.Instances.caterpillar ~length:3 ~leaves_per_node:2 ~f:1 ~n:0 in
  Alcotest.(check int) "size" 9 (T.size t);
  Alcotest.(check int) "height" 3 (T.height t)

let test_complete_binary () =
  let t = Tt_core.Instances.complete_binary ~levels:4 ~f:1 ~n:0 in
  Alcotest.(check int) "size" 15 (T.size t);
  Alcotest.(check int) "height" 3 (T.height t);
  Array.iteri
    (fun i cs ->
      let d = Array.length cs in
      if d <> 0 && d <> 2 then Alcotest.failf "node %d has degree %d" i d)
    t.T.children

let test_harpoon_structure () =
  let b = 3 in
  let t = Tt_core.Instances.harpoon ~branches:b ~m:30 ~eps:1 in
  Alcotest.(check int) "size 1 + 3b" (1 + (3 * b)) (T.size t);
  Alcotest.(check int) "root degree" b (Array.length t.T.children.(0));
  (* each branch is M/b, eps, M from the root down *)
  Array.iter
    (fun a ->
      Alcotest.(check int) "a file" 10 t.T.f.(a);
      let bb = t.T.children.(a).(0) in
      Alcotest.(check int) "b file" 1 t.T.f.(bb);
      let c = t.T.children.(bb).(0) in
      Alcotest.(check int) "c file" 30 t.T.f.(c);
      Alcotest.(check bool) "c leaf" true (T.is_leaf t c))
    t.T.children.(0)

let test_harpoon_nested_size () =
  (* p(L) = 1 + b(2 + p'(L-1)) with p'(1) = 3b counted without its root *)
  let size b l =
    T.size (Tt_core.Instances.harpoon_nested ~branches:b ~levels:l ~m:(10 * b) ~eps:1)
  in
  Alcotest.(check int) "b=2 L=1" 7 (size 2 1);
  Alcotest.(check int) "b=2 L=2" (1 + (2 * (2 + 1 + 6))) (size 2 2);
  Alcotest.(check int) "b=3 L=1" 10 (size 3 1)

let test_harpoon_validation () =
  Alcotest.check_raises "branches" (Invalid_argument "Instances.harpoon_nested: branches < 1")
    (fun () -> ignore (Tt_core.Instances.harpoon ~branches:0 ~m:10 ~eps:1));
  Alcotest.check_raises "levels" (Invalid_argument "Instances.harpoon_nested: levels < 1")
    (fun () -> ignore (Tt_core.Instances.harpoon_nested ~branches:2 ~levels:0 ~m:10 ~eps:1));
  Alcotest.check_raises "m too small" (Invalid_argument "Instances.harpoon_nested: m < branches")
    (fun () -> ignore (Tt_core.Instances.harpoon ~branches:5 ~m:3 ~eps:1));
  Alcotest.check_raises "eps" (Invalid_argument "Instances.harpoon_nested: eps < 0")
    (fun () -> ignore (Tt_core.Instances.harpoon ~branches:2 ~m:10 ~eps:(-1)))

let test_theorem1_monotone_in_m () =
  let r m = Tt_core.Instances.theorem1_ratio ~branches:3 ~levels:2 ~m ~eps:1 in
  Alcotest.(check bool) "larger M, larger ratio" true (r 300 > r 30)

let test_gadget_weights () =
  let a = [| 2; 1; 1 |] in
  let tree, memory, _ = Tt_core.Instances.two_partition_gadget a in
  let s = 4 in
  (* root f = 0; T_i files a_i; Tout_i files S; T_big file S; Tout_big S/2 *)
  Alcotest.(check int) "root f" 0 tree.T.f.(tree.T.root);
  Alcotest.(check int) "memory" (2 * s) memory;
  let leaves = ref 0 and big = ref 0 in
  Array.iteri
    (fun i fi ->
      if T.is_leaf tree i then begin
        incr leaves;
        if fi = s / 2 then incr big
      end)
    tree.T.f;
  Alcotest.(check int) "n + 1 leaves" 4 !leaves;
  Alcotest.(check int) "one S/2 leaf" 1 !big;
  Alcotest.check_raises "nonpositive a"
    (Invalid_argument "Instances.two_partition_gadget: a_i <= 0") (fun () ->
      ignore (Tt_core.Instances.two_partition_gadget [| 2; 0 |]))

let () =
  H.run "instances"
    [ ( "generic shapes",
        [ H.case "chain" test_chain;
          H.case "star" test_star;
          H.case "caterpillar" test_caterpillar;
          H.case "complete binary" test_complete_binary
        ] );
      ( "harpoons",
        [ H.case "structure" test_harpoon_structure;
          H.case "nested size" test_harpoon_nested_size;
          H.case "validation" test_harpoon_validation;
          H.case "ratio monotone in M" test_theorem1_monotone_in_m
        ] );
      ("gadget", [ H.case "weights" test_gadget_weights ])
    ]
