(* Tests for Algorithm 2: the out-of-core schedule checker. *)

module T = Tt_core.Tree
module Io = Tt_core.Io_schedule
module H = Helpers

(* root 0 (f=2) -> 1 (f=5) -> 2 (f=3); all n = 0 *)
let chain3 () = T.make ~parent:[| -1; 0; 1 |] ~f:[| 2; 5; 3 |] ~n:[| 0; 0; 0 |]

let test_in_core_schedule () =
  let t = chain3 () in
  let s = Io.in_core [| 0; 1; 2 |] in
  Alcotest.(check int) "io volume" 0 (Io.io_volume t s);
  match Io.check t ~memory:8 s with
  | Io.Feasible { io; peak } ->
      Alcotest.(check int) "no io" 0 io;
      Alcotest.(check int) "peak" 8 peak
  | _ -> Alcotest.fail "expected feasible"

let test_write_and_read_back () =
  (* root 0 (f=2) with children 1 (f=5) and 2 (f=3): f_2 is produced at
     step 0 and consumed at step 2, so it can be written at step 1 *)
  let t = T.make ~parent:[| -1; 0; 0 |] ~f:[| 2; 5; 3 |] ~n:[| 0; 0; 0 |] in
  let s = { Io.order = [| 0; 1; 2 |]; tau = [| Io.never; Io.never; 1 |] } in
  Alcotest.(check int) "io volume" 3 (Io.io_volume t s);
  (* in-core peak is 10 (exec 0 holds 2+5+3); with f_2 evicted, step 1
     only needs 5, so 8 words suffice *)
  (match Io.check t ~memory:10 s with
  | Io.Feasible { io; _ } -> Alcotest.(check int) "io" 3 io
  | _ -> Alcotest.fail "expected feasible");
  (* constraint (6): a write at the owner's execution step is invalid *)
  (match
     Io.check t ~memory:10 { Io.order = [| 0; 1; 2 |]; tau = [| Io.never; Io.never; 2 |] }
   with
  | Io.Invalid { reason; _ } ->
      Alcotest.(check string) "tau = sigma rejected" "write at the execution step" reason
  | _ -> Alcotest.fail "expected invalid");
  (* without the eviction, one word below the peak fails *)
  match Io.check t ~memory:9 (Io.in_core [| 0; 1; 2 |]) with
  | Io.Infeasible_at _ -> ()
  | _ -> Alcotest.fail "in-core at 9 should fail"

let test_eviction_enables () =
  (* root 0 (f=0) with children 1 (f=4 -> leaf 3 f=4) and 2 (f=4, leaf).
     In-core peak: 0: 0+8=8 ... with memory 8 feasible in-core. With the
     eviction of f_2 during subtree-1 processing, memory 8 still needed at
     the root; this test exercises a genuinely useful eviction. *)
  let t =
    T.make ~parent:[| -1; 0; 0; 1 |] ~f:[| 0; 4; 4; 6 |] ~n:[| 0; 0; 0; 0 |]
  in
  (* in-core: peak = max(8, exec 1: 4+4+6 = 14) with order 0 1 3 2 *)
  let order = [| 0; 1; 3; 2 |] in
  Alcotest.(check int) "in-core peak" 14 (Tt_core.Traversal.peak t order);
  (* evict f_2 at step 1, read back at step 3: exec 1 now needs 4+6+0=10 *)
  let s = { Io.order; tau = [| Io.never; Io.never; 1; Io.never |] } in
  match Io.check t ~memory:10 s with
  | Io.Feasible { io; peak } ->
      Alcotest.(check int) "io" 4 io;
      Alcotest.(check bool) "peak within" true (peak <= 10)
  | _ -> Alcotest.fail "eviction should make 10 feasible"

let test_invalid_schedules () =
  let t = chain3 () in
  let expect reason s =
    match Io.check t ~memory:100 s with
    | Io.Invalid { reason = r; _ } -> Alcotest.(check string) "reason" reason r
    | _ -> Alcotest.failf "expected invalid (%s)" reason
  in
  (* writing the root's file *)
  expect "root file written" { Io.order = [| 0; 1; 2 |]; tau = [| 1; Io.never; Io.never |] };
  (* writing before production: f_2 exists only after step 1 *)
  expect "write of a non-resident file"
    { Io.order = [| 0; 1; 2 |]; tau = [| Io.never; Io.never; 1 |] };
  (* writing a file after its owner executed: never resident again *)
  expect "write of a non-resident file"
    { Io.order = [| 0; 1; 2 |]; tau = [| Io.never; 2; Io.never |] };
  (* tau out of range *)
  expect "tau out of range"
    { Io.order = [| 0; 1; 2 |]; tau = [| Io.never; 9; Io.never |] };
  (* order problems are still caught *)
  expect "parent not yet executed"
    { Io.order = [| 0; 2; 1 |]; tau = [| Io.never; Io.never; Io.never |] }

let test_double_write () =
  (* two writes of the same file need two tau slots, which the array form
     cannot even express: instead check duplicate via same-step writes *)
  let t = T.make ~parent:[| -1; 0; 0 |] ~f:[| 0; 3; 4 |] ~n:[| 0; 0; 0 |] in
  let s = { Io.order = [| 0; 1; 2 |]; tau = [| Io.never; Io.never; 1 |] } in
  (* f_2 written at step 1, read back at step 2: fine *)
  (match Io.check t ~memory:7 s with
  | Io.Feasible { io; _ } -> Alcotest.(check int) "io" 4 io
  | _ -> Alcotest.fail "expected feasible");
  (* but wrong length arrays are rejected *)
  match Io.check t ~memory:7 { Io.order = [| 0; 1; 2 |]; tau = [| Io.never |] } with
  | Io.Invalid { reason; _ } -> Alcotest.(check string) "reason" "wrong length" reason
  | _ -> Alcotest.fail "expected invalid"

let prop_in_core_check_matches_traversal =
  H.qcheck "Algorithm 2 with no writes = Algorithm 1"
    (H.arb_tree_with_order ()) (fun (t, order) ->
      let peak = Tt_core.Traversal.peak t order in
      match Io.check t ~memory:peak (Io.in_core order) with
      | Io.Feasible { io; peak = p } -> io = 0 && p = peak
      | _ -> false)

let prop_in_core_tight =
  H.qcheck "one word below the peak fails without I/O"
    (H.arb_tree_with_order ()) (fun (t, order) ->
      let peak = Tt_core.Traversal.peak t order in
      match Io.check t ~memory:(peak - 1) (Io.in_core order) with
      | Io.Infeasible_at _ -> true
      | Io.Feasible _ -> false
      | Io.Invalid _ -> false)

let prop_validate_io =
  H.qcheck "validate_io returns the volume on feasible schedules"
    (H.arb_tree_with_order ()) (fun (t, order) ->
      let peak = Tt_core.Traversal.peak t order in
      Io.validate_io t ~memory:peak (Io.in_core order) = 0)


let prop_reported_peak_bounds =
  H.qcheck "a feasible schedule's peak lies between the floor and the budget"
    (H.arb_tree_with_order ()) (fun (t, order) ->
      let memory = Tt_core.Traversal.peak t order in
      match Io.check t ~memory (Io.in_core order) with
      | Io.Feasible { peak; _ } ->
          peak <= memory && peak >= Tt_core.Tree.max_mem_req t
      | _ -> false)

let () =
  H.run "io_schedule"
    [ ( "hand cases",
        [ H.case "in-core" test_in_core_schedule;
          H.case "write/read back" test_write_and_read_back;
          H.case "useful eviction" test_eviction_enables;
          H.case "invalid schedules" test_invalid_schedules;
          H.case "lengths and double writes" test_double_write
        ] );
      ( "properties",
        [ prop_in_core_check_matches_traversal;
          prop_in_core_tight;
          prop_validate_io;
          prop_reported_peak_bounds
        ] )
    ]
