(* Tests for the tree workflow model (Tt_core.Tree). *)

module T = Tt_core.Tree
module H = Helpers

let tiny () =
  (* 0 -> {1, 2}, 2 -> 3 *)
  T.make ~parent:[| -1; 0; 0; 2 |] ~f:[| 5; 2; 3; 4 |] ~n:[| 1; 0; 2; 0 |]

let test_make_valid () =
  let t = tiny () in
  Alcotest.(check int) "size" 4 (T.size t);
  Alcotest.(check int) "root" 0 t.T.root;
  Alcotest.(check (array int)) "children of 0" [| 1; 2 |] t.T.children.(0);
  Alcotest.(check (array int)) "children of 2" [| 3 |] t.T.children.(2);
  Alcotest.(check bool) "leaf 1" true (T.is_leaf t 1);
  Alcotest.(check bool) "leaf 0" false (T.is_leaf t 0)

let test_make_errors () =
  let expect msg parent f n =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (T.make ~parent ~f ~n))
  in
  expect "Tree.make: empty tree" [||] [||] [||];
  expect "Tree.make: several roots" [| -1; -1 |] [| 0; 0 |] [| 0; 0 |];
  expect "Tree.make: no root" [| 1; 0 |] [| 0; 0 |] [| 0; 0 |];
  expect "Tree.make: parent out of range" [| -1; 7 |] [| 0; 0 |] [| 0; 0 |];
  expect "Tree.make: self-loop" [| -1; 1 |] [| 0; 0 |] [| 0; 0 |];
  expect "Tree.make: array length mismatch" [| -1 |] [| 0; 1 |] [| 0 |];
  expect "Tree.make: f.(1) < 0" [| -1; 0 |] [| 0; -2 |] [| 0; 0 |];
  (* cycle among non-root nodes *)
  Alcotest.check_raises "cycle" (Invalid_argument "Tree.make: cycle in parent pointers")
    (fun () -> ignore (T.make ~parent:[| -1; 2; 1 |] ~f:[| 0; 0; 0 |] ~n:[| 0; 0; 0 |]))

let test_mem_req () =
  let t = tiny () in
  Alcotest.(check int) "root req" (5 + 1 + 2 + 3) (T.mem_req t 0);
  Alcotest.(check int) "leaf req" 2 (T.mem_req t 1);
  Alcotest.(check int) "inner req" (3 + 2 + 4) (T.mem_req t 2);
  Alcotest.(check int) "max req" 11 (T.max_mem_req t);
  Alcotest.(check int) "total f" 14 (T.total_f t);
  Alcotest.(check int) "sum children f" 5 (T.sum_children_f t 0)

let test_depth_height () =
  let t = tiny () in
  Alcotest.(check (array int)) "depth" [| 0; 1; 1; 2 |] (T.depth t);
  Alcotest.(check int) "height" 2 (T.height t);
  Alcotest.(check (array int)) "subtree sizes" [| 4; 1; 2; 1 |] (T.subtree_sizes t);
  let chain = Tt_core.Instances.chain ~length:5 ~f:1 ~n:0 in
  Alcotest.(check int) "chain height" 4 (T.height chain)

let test_negative_n_allowed () =
  let t = T.make ~parent:[| -1; 0 |] ~f:[| 3; 2 |] ~n:[| -2; 0 |] in
  Alcotest.(check int) "negative n in mem_req" 3 (T.mem_req t 0)

let test_string_round_trip () =
  let t = tiny () in
  Alcotest.(check bool) "round trip" true (T.equal t (T.of_string (T.to_string t)))

let prop_string_round_trip =
  H.qcheck "to_string/of_string round trip" (H.arb_tree ()) (fun t ->
      T.equal t (T.of_string (T.to_string t)))

let test_of_string_errors () =
  List.iter
    (fun s ->
      match T.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ ""; "x"; "2 -1:0:0"; "1 -1:a:0"; "1 -1:0"; "1 0:0:0" ]

let prop_random_tree_valid =
  H.qcheck "random trees validate and have consistent arrays"
    (H.arb_tree ~size_max:40 ()) (fun t ->
      let d = T.depth t in
      Array.for_all (fun x -> x >= 0) d
      && Array.for_all (fun f -> f >= 0) t.T.f
      && T.size t = Array.length t.T.parent)

let prop_subtree_sizes =
  H.qcheck "subtree sizes sum over children + 1" (H.arb_tree ~size_max:30 ())
    (fun t ->
      let sz = T.subtree_sizes t in
      let ok = ref (sz.(t.T.root) = T.size t) in
      Array.iteri
        (fun i cs ->
          let s = Array.fold_left (fun acc c -> acc + sz.(c)) 1 cs in
          if s <> sz.(i) then ok := false)
        t.T.children;
      !ok)

let test_map_weights () =
  let t = tiny () in
  let t' = T.map_weights ~f:(fun i -> 10 + i) ~n:(fun i -> i) t in
  Alcotest.(check (array int)) "f rewritten" [| 10; 11; 12; 13 |] t'.T.f;
  Alcotest.(check (array int)) "n rewritten" [| 0; 1; 2; 3 |] t'.T.n;
  Alcotest.(check (array int)) "shape preserved" t.T.parent t'.T.parent

let test_random_shape_degree () =
  let rng = Tt_util.Rng.create 3 in
  for _ = 1 to 20 do
    let t = T.random_shape ~rng ~size:40 ~max_degree:2 in
    Array.iter
      (fun cs ->
        if Array.length cs > 2 then Alcotest.failf "degree %d > 2" (Array.length cs))
      t.T.children
  done

let test_deep_tree_is_stack_safe () =
  (* 200k-node chain: structural operations must not overflow the stack *)
  let p = 200_000 in
  let t = Tt_core.Instances.chain ~length:p ~f:1 ~n:0 in
  Alcotest.(check int) "height" (p - 1) (T.height t);
  Alcotest.(check int) "subtree size at root" p (T.subtree_sizes t).(t.T.root)

let () =
  H.run "tree"
    [ ( "construction",
        [ H.case "valid" test_make_valid;
          H.case "errors" test_make_errors;
          H.case "negative n" test_negative_n_allowed
        ] );
      ( "accessors",
        [ H.case "mem_req" test_mem_req;
          H.case "depth/height" test_depth_height;
          H.case "map_weights" test_map_weights;
          prop_subtree_sizes
        ] );
      ( "serialization",
        [ H.case "round trip" test_string_round_trip;
          H.case "parse errors" test_of_string_errors;
          prop_string_round_trip
        ] );
      ( "random",
        [ prop_random_tree_valid;
          H.case "bounded degree" test_random_shape_degree;
          H.case "deep chain" test_deep_tree_is_stack_safe
        ] )
    ]
