(* Tests for the fill-reducing orderings. *)

module S = Tt_sparse
module O = Tt_ordering
module H = Helpers

let graph_of a = O.Graph_adj.of_pattern (S.Csr.symmetrize_pattern a)

let fill_of a perm =
  let b = O.Permute.apply (S.Csr.symmetrize_pattern a) perm in
  let parent = Tt_etree.Elimination_tree.parents b in
  Tt_etree.Col_counts.nnz_l b ~parent

let arb_graph =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Tt_util.Rng.create seed in
        let n = Tt_util.Rng.int_incl rng 2 40 in
        S.Spgen.random_sym ~rng ~n ~nnz_per_row:2.5)
      (QCheck.Gen.int_bound 1_000_000)
  in
  QCheck.make ~print:(fun a -> Printf.sprintf "n=%d" a.S.Csr.nrows) gen

(* ------------------------------------------------------------- graph_adj *)

let test_graph_basics () =
  let a = S.Spgen.tridiagonal 5 in
  let g = graph_of a in
  Alcotest.(check int) "n" 5 g.O.Graph_adj.n;
  Alcotest.(check (array int)) "middle adjacency" [| 1; 3 |] g.O.Graph_adj.adj.(2);
  Alcotest.(check int) "degree" 2 (O.Graph_adj.degree g 2);
  Alcotest.(check (array int)) "bfs from 0" [| 0; 1; 2; 3; 4 |] (O.Graph_adj.bfs_levels g 0)

let test_graph_of_adjacency () =
  let g = O.Graph_adj.of_adjacency [| [| 1; 1; 0 |]; [| 0 |] |] in
  (* self-loop dropped, duplicates removed, sorted *)
  Alcotest.(check (array int)) "cleaned" [| 1 |] g.O.Graph_adj.adj.(0);
  Alcotest.check_raises "oob" (Invalid_argument "Graph_adj.of_adjacency: out of range")
    (fun () -> ignore (O.Graph_adj.of_adjacency [| [| 5 |] |]))

let test_components () =
  (* two disjoint paths *)
  let t = S.Triplet.create ~nrows:6 ~ncols:6 in
  S.Triplet.add t 1 0 1.;
  S.Triplet.add t 0 1 1.;
  S.Triplet.add t 4 3 1.;
  S.Triplet.add t 3 4 1.;
  S.Triplet.add t 5 4 1.;
  S.Triplet.add t 4 5 1.;
  List.iter (fun i -> S.Triplet.add t i i 1.) [ 0; 1; 2; 3; 4; 5 ];
  let g = O.Graph_adj.of_pattern (S.Csr.of_triplet t) in
  let comp, count = O.Graph_adj.components g in
  Alcotest.(check int) "three components" 3 count;
  Alcotest.(check bool) "0 and 1 together" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "0 and 3 apart" true (comp.(0) <> comp.(3))

let test_pseudo_peripheral () =
  (* on a path, the pseudo-peripheral vertex from the middle is an end *)
  let g = graph_of (S.Spgen.tridiagonal 9) in
  let v = O.Graph_adj.pseudo_peripheral g 4 in
  Alcotest.(check bool) "an endpoint" true (v = 0 || v = 8)

(* ------------------------------------------------------------- orderings *)

let prop_all_permutations =
  H.qcheck ~count:60 "every ordering returns a permutation" arb_graph (fun a ->
      let g = graph_of a in
      List.for_all O.Permute.is_permutation
        [ O.Rcm.order g; O.Min_degree.order g; O.Nested_dissection.order g ])

let test_rcm_bandwidth () =
  (* RCM must not increase the bandwidth of a shuffled band matrix *)
  let rng = Tt_util.Rng.create 12 in
  let a = S.Spgen.banded ~rng ~n:60 ~bandwidth:3 ~fill:0.8 in
  let shuffle = O.Permute.random ~rng 60 in
  let shuffled = O.Permute.apply (S.Csr.symmetrize_pattern a) shuffle in
  let bandwidth m =
    let b = ref 0 in
    for i = 0 to m.S.Csr.nrows - 1 do
      Seq.iter (fun (j, _) -> b := max !b (abs (i - j))) (S.Csr.row m i)
    done;
    !b
  in
  let perm = O.Rcm.order (O.Graph_adj.of_pattern shuffled) in
  let reordered = O.Permute.apply shuffled perm in
  if bandwidth reordered > bandwidth shuffled then
    Alcotest.failf "rcm bandwidth %d > shuffled %d" (bandwidth reordered)
      (bandwidth shuffled);
  Alcotest.(check bool) "rcm close to original band" true (bandwidth reordered <= 8)

let test_mindeg_reduces_fill () =
  let a = S.Spgen.grid2d 12 in
  let g = graph_of a in
  let natural = fill_of a (O.Permute.identity 144) in
  let md = fill_of a (O.Min_degree.order g) in
  let nd = fill_of a (O.Nested_dissection.order g) in
  if md >= natural then Alcotest.failf "mindeg fill %d >= natural %d" md natural;
  if nd >= natural then Alcotest.failf "nd fill %d >= natural %d" nd natural

let test_mindeg_tridiagonal_no_fill () =
  (* a path graph has a perfect elimination ordering; min degree finds
     a no-fill ordering *)
  let a = S.Spgen.tridiagonal 30 in
  let md = fill_of a (O.Min_degree.order (graph_of a)) in
  Alcotest.(check int) "no fill" (30 + 29) md

let prop_mindeg_never_worse_than_reverse =
  H.qcheck ~count:40 "min degree beats a random shuffle on average-fill graphs"
    arb_graph (fun a ->
      let g = graph_of a in
      let md = fill_of a (O.Min_degree.order g) in
      let rng = Tt_util.Rng.create 77 in
      let rand = fill_of a (O.Permute.random ~rng a.S.Csr.nrows) in
      md <= rand + (a.S.Csr.nrows / 2))

let test_nd_separator_last () =
  (* on a path, nested dissection numbers a middle separator last *)
  let a = S.Spgen.tridiagonal 31 in
  let perm = O.Nested_dissection.order (graph_of a) in
  let last = perm.(30) in
  Alcotest.(check bool) "last vertex near the middle" true (last > 5 && last < 25)

let test_deterministic () =
  let a = S.Spgen.grid2d 8 in
  let g = graph_of a in
  Alcotest.(check (array int)) "mindeg deterministic" (O.Min_degree.order g)
    (O.Min_degree.order g);
  Alcotest.(check (array int)) "rcm deterministic" (O.Rcm.order g) (O.Rcm.order g);
  Alcotest.(check (array int)) "nd deterministic" (O.Nested_dissection.order g)
    (O.Nested_dissection.order g)

(* -------------------------------------------------------------- permute *)

let test_permute_helpers () =
  Alcotest.(check (array int)) "identity" [| 0; 1; 2 |] (O.Permute.identity 3);
  Alcotest.(check (array int)) "inverse" [| 2; 0; 1 |] (O.Permute.inverse [| 1; 2; 0 |]);
  Alcotest.(check bool) "valid" true (O.Permute.is_permutation [| 2; 0; 1 |]);
  Alcotest.(check bool) "invalid" false (O.Permute.is_permutation [| 0; 0 |]);
  let rng = Tt_util.Rng.create 4 in
  Alcotest.(check bool) "random perm valid" true
    (O.Permute.is_permutation (O.Permute.random ~rng 20))

let prop_inverse_round_trip =
  H.qcheck "inverse of inverse is identity"
    (QCheck.map
       (fun seed ->
         let rng = Tt_util.Rng.create seed in
         O.Permute.random ~rng (1 + Tt_util.Rng.int rng 30))
       QCheck.(int_bound 1_000_000))
    (fun p -> O.Permute.inverse (O.Permute.inverse p) = p)

let () =
  H.run "ordering"
    [ ( "graph",
        [ H.case "basics" test_graph_basics;
          H.case "of_adjacency" test_graph_of_adjacency;
          H.case "components" test_components;
          H.case "pseudo-peripheral" test_pseudo_peripheral
        ] );
      ( "orderings",
        [ prop_all_permutations;
          H.case "rcm bandwidth" test_rcm_bandwidth;
          H.case "mindeg fill" test_mindeg_reduces_fill;
          H.case "mindeg no-fill chain" test_mindeg_tridiagonal_no_fill;
          prop_mindeg_never_worse_than_reverse;
          H.case "nd separator" test_nd_separator_last;
          H.case "deterministic" test_deterministic
        ] );
      ("permute", [ H.case "helpers" test_permute_helpers; prop_inverse_round_trip ])
    ]
