(* The classical pebble-game specializations: Sethi-Ullman labels equal
   the exact pebble optimum computed by MinMem through the Figure 1
   embedding, and Belady/LSNF is exact for unit-size MinIO instances. *)

module T = Tt_core.Tree
module H = Helpers

let arb_shape ?(max_degree = 6) () =
  QCheck.make
    ~print:T.to_string
    (QCheck.Gen.map
       (fun seed ->
         let rng = Tt_util.Rng.create seed in
         let size = Tt_util.Rng.int_incl rng 1 30 in
         T.random_shape ~rng ~size ~max_degree)
       (QCheck.Gen.int_bound 1_000_000))

let prop_su_equals_pebble_optimum =
  H.qcheck ~count:200 "Sethi-Ullman label = exact pebble optimum (any arity)"
    (arb_shape ()) (fun t ->
      Tt_core.Pebble.sethi_ullman t = Tt_core.Pebble.min_registers t)

let prop_su_equals_strahler_on_binary =
  H.qcheck ~count:200 "on binary trees the label is the Strahler number"
    (arb_shape ~max_degree:2 ()) (fun t ->
      Tt_core.Pebble.sethi_ullman t = Tt_core.Pebble.strahler t)

let test_su_known_values () =
  (* chain: 1 register; complete binary tree of depth d: d+1 *)
  Alcotest.(check int) "chain" 1
    (Tt_core.Pebble.sethi_ullman (Tt_core.Instances.chain ~length:20 ~f:0 ~n:0));
  List.iter
    (fun levels ->
      Alcotest.(check int)
        (Printf.sprintf "complete binary %d levels" levels)
        levels
        (Tt_core.Pebble.sethi_ullman
           (Tt_core.Instances.complete_binary ~levels ~f:1 ~n:0)))
    [ 1; 2; 3; 4; 5 ];
  (* a ternary star: all three children alive at once *)
  Alcotest.(check int) "ternary star" 3
    (Tt_core.Pebble.sethi_ullman
       (Tt_core.Instances.star ~branches:3 ~f_root:1 ~f_leaf:1 ~n:0))

let test_strahler_vs_su_diverge () =
  (* arity 3 with equal children: Strahler 2, Sethi-Ullman 3 *)
  let t = Tt_core.Instances.star ~branches:3 ~f_root:1 ~f_leaf:1 ~n:0 in
  Alcotest.(check int) "strahler" 2 (Tt_core.Pebble.strahler t);
  Alcotest.(check int) "sethi-ullman" 3 (Tt_core.Pebble.sethi_ullman t)

let test_unit_replacement_tree () =
  let t = Tt_core.Instances.complete_binary ~levels:3 ~f:9 ~n:9 in
  let u = Tt_core.Pebble.unit_replacement_tree t in
  Alcotest.(check bool) "unit files" true (Array.for_all (fun f -> f = 1) u.T.f);
  Alcotest.(check int) "leaf n" 0 u.T.n.(6);
  Alcotest.(check int) "internal n" (-1) u.T.n.(0)

(* --- unit-size MinIO: Belady (LSNF) is exact for a fixed traversal ----- *)

let prop_lsnf_exact_on_unit_sizes =
  H.qcheck ~count:200 "LSNF = exact MinIO when all files have size one"
    (QCheck.map
       (fun seed ->
         let rng = Tt_util.Rng.create seed in
         let shape = T.random_shape ~rng ~size:(Tt_util.Rng.int_incl rng 2 14) ~max_degree:5 in
         let t = T.map_weights ~f:(fun _ -> 1) ~n:(fun _ -> 0) shape in
         let order = Tt_core.Traversal.random_order ~rng t in
         let floor = T.max_mem_req t in
         let peak = Tt_core.Traversal.peak t order in
         let memory =
           if peak <= floor then floor else Tt_util.Rng.int_incl rng floor peak
         in
         (t, order, memory))
       QCheck.(int_bound 1_000_000))
    (fun (t, order, memory) ->
      match
        ( Tt_core.Minio.io_volume t ~memory ~order Tt_core.Minio.Lsnf,
          Tt_core.Minio_exact.given_order t ~memory ~order )
      with
      | Some lsnf, Some exact -> lsnf = exact
      | _ -> false)

let () =
  H.run "pebble"
    [ ( "sethi-ullman",
        [ prop_su_equals_pebble_optimum;
          prop_su_equals_strahler_on_binary;
          H.case "known values" test_su_known_values;
          H.case "strahler diverges at arity 3" test_strahler_vs_su_diverge;
          H.case "unit embedding" test_unit_replacement_tree
        ] );
      ("unit-size minio", [ prop_lsnf_exact_on_unit_sizes ])
    ]
