test/test_segments.ml: Alcotest Helpers List Printf QCheck String Tt_core Tt_util
