test/test_pebble.ml: Alcotest Array Helpers List Printf QCheck Tt_core Tt_util
