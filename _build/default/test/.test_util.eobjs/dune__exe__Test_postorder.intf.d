test/test_postorder.mli:
