test/test_matrix_market.ml: Alcotest Array Filename Float Helpers QCheck Sys Tt_sparse Tt_util
