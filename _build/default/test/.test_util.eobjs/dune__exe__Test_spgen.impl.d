test/test_spgen.ml: Alcotest Array Float Helpers Seq Tt_ordering Tt_sparse Tt_util
