test/test_tree.ml: Alcotest Array Helpers List Tt_core Tt_util
