test/test_sparse.ml: Alcotest Array Float Helpers Printf QCheck Seq Tt_sparse Tt_util
