test/test_workloads.ml: Alcotest Array Helpers List Printf String Tt_core Tt_etree Tt_sparse Tt_util Tt_workloads
