test/test_integration.ml: Alcotest Array Helpers Lazy List Tt_core Tt_etree Tt_multifrontal Tt_ordering Tt_sparse Tt_workloads
