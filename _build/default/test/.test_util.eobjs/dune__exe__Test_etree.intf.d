test/test_etree.mli:
