test/test_io_schedule.mli:
