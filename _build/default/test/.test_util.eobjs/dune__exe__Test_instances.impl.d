test/test_instances.ml: Alcotest Array Helpers Tt_core
