test/test_etree.ml: Alcotest Array Helpers List Printf QCheck Tt_core Tt_etree Tt_sparse Tt_util
