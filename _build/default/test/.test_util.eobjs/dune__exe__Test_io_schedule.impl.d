test/test_io_schedule.ml: Alcotest Helpers Tt_core
