test/test_profile.ml: Alcotest Array Helpers List String Tt_profile
