test/test_differential.ml: Array Bytes Char Helpers Printf QCheck String Tt_core Tt_sparse Tt_util
