test/test_minio.ml: Alcotest Array Helpers List Option Printf QCheck String Tt_core Tt_util
