test/test_transform.ml: Alcotest Array Helpers QCheck Tt_core Tt_util
