test/test_ordering.ml: Alcotest Array Helpers List Printf QCheck Seq Tt_etree Tt_ordering Tt_sparse Tt_util
