test/test_multifrontal.mli:
