test/test_minio.mli:
