test/test_multifrontal.ml: Alcotest Array Float Helpers List Printf QCheck Tt_core Tt_etree Tt_multifrontal Tt_ordering Tt_sparse Tt_util
