test/test_matrix_market.mli:
