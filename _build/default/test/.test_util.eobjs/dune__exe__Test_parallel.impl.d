test/test_parallel.ml: Alcotest Array Helpers Option QCheck Tt_core
