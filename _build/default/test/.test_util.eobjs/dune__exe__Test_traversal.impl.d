test/test_traversal.ml: Alcotest Array Helpers List Tt_core
