test/test_planner.ml: Alcotest Helpers QCheck String Tt_core Tt_util
