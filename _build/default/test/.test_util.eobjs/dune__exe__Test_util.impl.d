test/test_util.ml: Alcotest Array Float Gen Hashtbl Helpers List QCheck Tt_util
