test/test_spgen.mli:
