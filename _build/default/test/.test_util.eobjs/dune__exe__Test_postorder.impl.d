test/test_postorder.ml: Alcotest Array Helpers List Printf Tt_core
