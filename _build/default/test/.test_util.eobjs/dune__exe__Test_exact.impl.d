test/test_exact.ml: Alcotest Array Helpers List Printf Tt_core Tt_util
