test/test_explore.ml: Alcotest Array Helpers List Tt_core Tt_util
