(** Elimination trees (Schreiber 1982; Liu 1990).

    For a symmetric matrix A with Cholesky factor L, the parent of vertex
    [j] is the smallest row index [i > j] with [l_ij <> 0]. Computed
    without forming L by Liu's almost-linear algorithm with path
    compression. A reducible matrix yields a forest ([parent = -1] for
    every tree root). *)

val parents : Tt_sparse.Csr.t -> int array
(** [parents a] is the elimination-tree parent array of the structurally
    symmetric matrix [a] (as produced by
    {!Tt_sparse.Csr.symmetrize_pattern}); only the lower triangle is
    consulted.
    @raise Invalid_argument if [a] is not square. *)

val parents_dense_oracle : Tt_sparse.Csr.t -> int array
(** Reference implementation for the tests: run the full symbolic
    factorization on a dense copy and read the parents off the factor's
    pattern. Quadratic; small matrices only. *)

val roots : int array -> int list
(** Indices with [parent = -1]. *)
