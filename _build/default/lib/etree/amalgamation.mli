(** Relaxed node amalgamation: elimination tree → assembly tree
    (§VI-B of the paper; Duff–Reid perfect amalgamation, Ashcraft–Grimes
    relaxation).

    Two rules, applied bottom-up:

    - {e perfect} amalgamation (always applied): a group's only remaining
      child is merged when its column has exactly one entry more than its
      original etree parent's column ([µ_child = µ_parent + 1]) — the two
      columns then have the same structure below the parent's diagonal
      (a genuine supernode);
    - {e relaxed} amalgamation: the group absorbs its densest child (the
      child of largest [µ]) as long as the merged group would not exceed
      [limit] original nodes.

    The paper instantiates [limit ∈ {1, 2, 4, 16}]. Each resulting group
    (supernode) [g] carries [η g] — the number of amalgamated nodes — and
    [µ g] — the column count of its {e highest} node (the one closest to
    the root), from which the paper's weights are computed:
    node weight [η² + 2η(µ-1)] and edge weight [(µ-1)²]. *)

type group = {
  members : int list;  (** Original vertices, highest first. *)
  eta : int;  (** [η]: number of amalgamated nodes. *)
  mu : int;  (** [µ]: column count of the highest node. *)
  parent : int;  (** Parent group index, [-1] for a root. *)
}

type t = {
  groups : group array;
  group_of : int array;  (** Original vertex → group index. *)
}

val run : parent:int array -> col_counts:int array -> limit:int -> t
(** Amalgamate an elimination tree (or forest).
    @raise Invalid_argument if [limit < 1] or the arrays disagree. *)

val node_weight : group -> int
(** [η² + 2η(µ-1)] — the paper's [n_i]. *)

val edge_weight : group -> int
(** [(µ-1)²] — the paper's [f_i]. *)
