type t = {
  tree : Tt_core.Tree.t;
  supernode_of_node : int array;
  virtual_root : bool;
}

(* Build a Tree.t from per-supernode (parent, f, n), adding a virtual root
   when the input is a forest. *)
let close_forest ~parents ~f ~n =
  let g = Array.length parents in
  let root_count = Array.fold_left (fun acc p -> if p = -1 then acc + 1 else acc) 0 parents in
  if root_count = 1 then
    ( Tt_core.Tree.make ~parent:parents ~f ~n,
      Array.init g (fun i -> i),
      false )
  else begin
    (* node g is the virtual root *)
    let parent' = Array.init (g + 1) (fun i -> if i = g then -1 else if parents.(i) = -1 then g else parents.(i)) in
    let f' = Array.init (g + 1) (fun i -> if i = g then 0 else f.(i)) in
    let n' = Array.init (g + 1) (fun i -> if i = g then 0 else n.(i)) in
    ( Tt_core.Tree.make ~parent:parent' ~f:f' ~n:n',
      Array.init (g + 1) (fun i -> if i = g then -1 else i),
      true )
  end

let of_amalgamation (a : Amalgamation.t) =
  let parents = Array.map (fun grp -> grp.Amalgamation.parent) a.Amalgamation.groups in
  let f = Array.map Amalgamation.edge_weight a.Amalgamation.groups in
  let n = Array.map Amalgamation.node_weight a.Amalgamation.groups in
  let tree, supernode_of_node, virtual_root = close_forest ~parents ~f ~n in
  { tree; supernode_of_node; virtual_root }

let of_etree_raw ~parent ~col_counts =
  let n_cols = Array.length parent in
  if Array.length col_counts <> n_cols then
    invalid_arg "Assembly.of_etree_raw: length mismatch";
  let f = Array.map (fun mu -> (mu - 1) * (mu - 1)) col_counts in
  let n = Array.map (fun mu -> (2 * mu) - 1) col_counts in
  let tree, supernode_of_node, virtual_root = close_forest ~parents:parent ~f ~n in
  { tree; supernode_of_node; virtual_root }
