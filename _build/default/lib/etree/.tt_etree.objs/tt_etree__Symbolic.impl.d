lib/etree/symbolic.ml: Array List Tt_sparse Tt_util
