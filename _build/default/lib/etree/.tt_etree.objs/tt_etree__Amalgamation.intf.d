lib/etree/amalgamation.mli:
