lib/etree/assembly.mli: Amalgamation Tt_core
