lib/etree/col_counts.mli: Tt_sparse
