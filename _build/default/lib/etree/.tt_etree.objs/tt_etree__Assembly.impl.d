lib/etree/assembly.ml: Amalgamation Array Tt_core
