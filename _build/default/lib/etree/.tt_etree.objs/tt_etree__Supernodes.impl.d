lib/etree/supernodes.ml: Array
