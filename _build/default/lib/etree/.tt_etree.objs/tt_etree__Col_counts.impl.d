lib/etree/col_counts.ml: Array Tt_sparse
