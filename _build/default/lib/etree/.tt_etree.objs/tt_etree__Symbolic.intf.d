lib/etree/symbolic.mli: Tt_sparse
