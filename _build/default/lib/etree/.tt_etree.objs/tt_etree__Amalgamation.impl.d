lib/etree/amalgamation.ml: Array List
