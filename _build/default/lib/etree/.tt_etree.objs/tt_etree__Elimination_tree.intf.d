lib/etree/elimination_tree.mli: Tt_sparse
