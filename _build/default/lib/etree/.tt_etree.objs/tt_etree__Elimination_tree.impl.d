lib/etree/elimination_tree.ml: Array List Tt_sparse
