lib/etree/supernodes.mli:
