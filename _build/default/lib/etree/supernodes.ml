let partition ~parent ~col_counts =
  let n = Array.length parent in
  if Array.length col_counts <> n then invalid_arg "Supernodes.partition: length mismatch";
  let child_count = Array.make n 0 in
  Array.iter (fun p -> if p >= 0 then child_count.(p) <- child_count.(p) + 1) parent;
  let rep = Array.make n 0 in
  for j = 0 to n - 1 do
    (* j continues the supernode of j-1 when j-1 is its only child and the
       counts telescope *)
    if
      j > 0
      && parent.(j - 1) = j
      && child_count.(j) = 1
      && col_counts.(j - 1) = col_counts.(j) + 1
    then rep.(j) <- rep.(j - 1)
    else rep.(j) <- j
  done;
  rep

let count ~parent ~col_counts =
  let rep = partition ~parent ~col_counts in
  let c = ref 0 in
  Array.iteri (fun j r -> if r = j then incr c) rep;
  !c

let sizes ~parent ~col_counts =
  let rep = partition ~parent ~col_counts in
  let n = Array.length rep in
  let size = Array.make n 0 in
  Array.iter (fun r -> size.(r) <- size.(r) + 1) rep;
  let acc = ref [] in
  for j = n - 1 downto 0 do
    if rep.(j) = j then acc := size.(j) :: !acc
  done;
  !acc
