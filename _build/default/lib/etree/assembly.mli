(** Assembly trees as {!Tt_core.Tree.t} workflows.

    The supernodes of an {!Amalgamation.t} become tree nodes with the
    paper's weights: execution file [n = η² + 2η(µ-1)] and input file
    [f = (µ-1)²] (the contribution block passed towards the root). A
    forest — reducible matrices produce one — is closed with a zero-weight
    virtual root. The resulting [Tree.t] is stored in the out-tree
    orientation used by the MinMemory/MinIO algorithms; multifrontal
    (bottom-up) schedules are its reversed traversals
    ({!Tt_core.Transform.reverse_traversal}). *)

type t = {
  tree : Tt_core.Tree.t;  (** The weighted workflow. *)
  supernode_of_node : int array;
      (** Tree node → supernode index in the amalgamation ([-1] for the
          virtual root, if any). *)
  virtual_root : bool;  (** Whether a virtual root was added. *)
}

val of_amalgamation : Amalgamation.t -> t
(** Assembly tree of an amalgamated elimination tree. *)

val of_etree_raw : parent:int array -> col_counts:int array -> t
(** One node per column ([η = 1] everywhere, no amalgamation): node [j]
    gets [n = 2µ_j - 1] and [f = (µ_j - 1)²] — exactly the live size of a
    frontal matrix ([µ²]) split into input file and execution file, so
    the tree model reproduces the multifrontal memory accounting word for
    word (asserted in the multifrontal tests). *)
