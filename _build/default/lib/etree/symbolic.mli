(** Full symbolic factorization: the row structure of every column of L.

    [struct_of j] is the sorted array of row indices of column [j] of L,
    diagonal included. Computed column by column as
    [struct j = {j} ∪ (A's lower column j) ∪ (∪ over etree children c of
    struct c minus {c})], with a marker making each column linear in its
    output size. The result drives the multifrontal frontal sizes. *)

type t = private {
  parent : int array;  (** The elimination tree used. *)
  col_struct : int array array;
      (** [col_struct.(j)]: sorted row indices of L's column [j]. *)
}

val run : Tt_sparse.Csr.t -> parent:int array -> t
(** Symbolic factorization of a structurally symmetric matrix. *)

val col_count : t -> int -> int
(** [µ j = |col_struct.(j)|], consistent with {!Col_counts.counts}. *)

val nnz_l : t -> int
(** Total nonzeros of L. *)

val factorization_flops : t -> int
(** Floating-point operations of the numeric Cholesky using these
    structures: [Σ_j µ_j²] (the classic symbolic flop count, up to
    constant factors). *)
