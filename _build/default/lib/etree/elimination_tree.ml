let parents (a : Tt_sparse.Csr.t) =
  if a.Tt_sparse.Csr.nrows <> a.Tt_sparse.Csr.ncols then
    invalid_arg "Elimination_tree.parents: not square";
  let n = a.Tt_sparse.Csr.nrows in
  let parent = Array.make n (-1) in
  let ancestor = Array.make n (-1) in
  for i = 0 to n - 1 do
    (* for each entry a(i,k) with k < i, climb from k to the current root
       and attach it to i, compressing ancestor links along the way *)
    for e = a.Tt_sparse.Csr.row_ptr.(i) to a.Tt_sparse.Csr.row_ptr.(i + 1) - 1 do
      let k = a.Tt_sparse.Csr.col_idx.(e) in
      if k < i then begin
        let r = ref k in
        while ancestor.(!r) <> -1 && ancestor.(!r) <> i do
          let next = ancestor.(!r) in
          ancestor.(!r) <- i;
          r := next
        done;
        if ancestor.(!r) = -1 then begin
          ancestor.(!r) <- i;
          parent.(!r) <- i
        end
      end
    done
  done;
  parent

let parents_dense_oracle (a : Tt_sparse.Csr.t) =
  let n = a.Tt_sparse.Csr.nrows in
  (* boolean dense symbolic Cholesky: pattern of L column by column *)
  let pat = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for e = a.Tt_sparse.Csr.row_ptr.(i) to a.Tt_sparse.Csr.row_ptr.(i + 1) - 1 do
      let j = a.Tt_sparse.Csr.col_idx.(e) in
      if j <= i then pat.(i).(j) <- true
    done;
    pat.(i).(i) <- true
  done;
  (* fill: if l_ik and l_jk with k < j < i then l_ij becomes nonzero *)
  for k = 0 to n - 1 do
    for i = k + 1 to n - 1 do
      if pat.(i).(k) then
        for j = k + 1 to i - 1 do
          if pat.(j).(k) then pat.(i).(j) <- true
        done
    done
  done;
  Array.init n (fun j ->
      let rec first i = if i >= n then -1 else if pat.(i).(j) then i else first (i + 1) in
      first (j + 1))

let roots parent =
  let acc = ref [] in
  Array.iteri (fun i p -> if p = -1 then acc := i :: !acc) parent;
  List.rev !acc
