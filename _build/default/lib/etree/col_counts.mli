(** Column counts of the Cholesky factor L.

    [counts.(j)] is the number of nonzeros of column [j] of L including
    the diagonal — the [µ] of the paper's node and edge weights. Computed
    by traversing, for every row [i], the row subtree: the paths from
    every [k] with [a_ik <> 0], [k < i], towards [i] in the elimination
    tree, stopping at vertices already marked for row [i] (Liu 1990,
    §5.2). Complexity O(nnz(L)). *)

val counts : Tt_sparse.Csr.t -> parent:int array -> int array
(** Column counts of L for a structurally symmetric matrix and its
    elimination tree. *)

val nnz_l : Tt_sparse.Csr.t -> parent:int array -> int
(** Total nonzeros of L, i.e. the sum of {!counts}. *)
