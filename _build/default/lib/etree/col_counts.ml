let counts (a : Tt_sparse.Csr.t) ~parent =
  let n = a.Tt_sparse.Csr.nrows in
  let cc = Array.make n 1 in
  (* diagonal counted *)
  let mark = Array.make n (-1) in
  for i = 0 to n - 1 do
    mark.(i) <- i;
    for e = a.Tt_sparse.Csr.row_ptr.(i) to a.Tt_sparse.Csr.row_ptr.(i + 1) - 1 do
      let k = a.Tt_sparse.Csr.col_idx.(e) in
      if k < i then begin
        (* l_ij <> 0 exactly for the j on the path k -> ... -> i *)
        let j = ref k in
        while mark.(!j) <> i do
          cc.(!j) <- cc.(!j) + 1;
          mark.(!j) <- i;
          j := parent.(!j)
        done
      end
    done
  done;
  cc

let nnz_l a ~parent = Array.fold_left ( + ) 0 (counts a ~parent)
