(** Fundamental supernodes.

    A {e fundamental supernode} is a maximal chain of columns
    [j, j+1, ..., j+k] where each column is the only etree child of the
    next and the column counts decrease by exactly one
    ([µ_i = µ_{i+1} + 1]) — the columns then share one dense trapezoidal
    block of L. This is the canonical no-relaxation partition that
    {!Amalgamation} generalizes; solvers use it as the starting point of
    supernode detection, and the tests check that perfect amalgamation
    and fundamental supernodes agree on consecutively-numbered chains. *)

val partition : parent:int array -> col_counts:int array -> int array
(** [partition ~parent ~col_counts] maps every column to its supernode
    representative (the {e first} = lowest column of its chain).
    @raise Invalid_argument if the arrays disagree in length. *)

val count : parent:int array -> col_counts:int array -> int
(** Number of fundamental supernodes. *)

val sizes : parent:int array -> col_counts:int array -> int list
(** Supernode sizes in column order (sums to the number of columns). *)
