module D = Tt_util.Dynarray_compat

type t = { parent : int array; col_struct : int array array }

let run (a : Tt_sparse.Csr.t) ~parent =
  let n = a.Tt_sparse.Csr.nrows in
  let children = Array.make n [] in
  for j = n - 1 downto 0 do
    if parent.(j) >= 0 then children.(parent.(j)) <- j :: children.(parent.(j))
  done;
  let col_struct = Array.make n [||] in
  let mark = Array.make n (-1) in
  (* columns in increasing order: children j' < j are done before j *)
  for j = 0 to n - 1 do
    let acc = D.create () in
    let visit i =
      if i >= j && mark.(i) <> j then begin
        mark.(i) <- j;
        D.add_last acc i
      end
    in
    visit j;
    (* entries of A's column j at or below the diagonal: A is symmetric,
       so read row j and mirror *)
    for e = a.Tt_sparse.Csr.row_ptr.(j) to a.Tt_sparse.Csr.row_ptr.(j + 1) - 1 do
      visit a.Tt_sparse.Csr.col_idx.(e)
    done;
    List.iter (fun c -> Array.iter visit col_struct.(c)) children.(j);
    let s = D.to_array acc in
    Array.sort compare s;
    col_struct.(j) <- s
  done;
  { parent; col_struct }

let col_count t j = Array.length t.col_struct.(j)

let nnz_l t = Array.fold_left (fun acc s -> acc + Array.length s) 0 t.col_struct

let factorization_flops t =
  Array.fold_left
    (fun acc s ->
      let mu = Array.length s in
      acc + (mu * mu))
    0 t.col_struct
