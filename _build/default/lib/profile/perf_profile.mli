(** Performance profiles (Dolan & Moré 2002) — the evaluation tool of the
    paper's §VI.

    Given a cost matrix (instances × methods; lower is better), each
    instance is normalized by the best method on that instance, and the
    profile of a method maps a tolerance [τ >= 1] to the fraction of
    instances on which the method is within a factor [τ] of the best.
    Failed runs are encoded as [infinity] and never counted. *)

type curve = {
  name : string;
  points : (float * float) array;
      (** [(τ, fraction)] samples, τ ascending, fraction non-decreasing. *)
}

val compute :
  ?tau_max:float -> ?samples:int -> names:string list -> float array array -> curve list
(** [compute ~names costs] with [costs.(instance).(method_index)].
    Samples [τ] on a geometric grid over [1, tau_max] (default: the
    largest finite ratio, capped at 16; [samples] defaults to 64).
    @raise Invalid_argument if dimensions disagree or some cost is
    negative. *)

val fraction_within : float array array -> column:int -> tau:float -> float
(** Fraction of instances on which [column] is within [tau] of the best
    method. [fraction_within costs ~column ~tau:1.0] is the fraction of
    instances where it {e is} the best. *)

val ratios : float array array -> column:int -> float array
(** Per-instance cost ratios of a method w.r.t. the best method
    (excluding instances where every method failed). *)

val dominant : curve list -> string
(** Name of the curve with the largest area (the method that is "higher"
    overall) — used by the benches to state who wins. *)

val to_csv : curve list -> string
(** Render the curves as CSV ([tau,name1,name2,...], one row per sample
    point) for external plotting. Curves must share their τ grid (as the
    ones built by {!compute} do).
    @raise Invalid_argument if the grids differ. *)
