let render ~header rows =
  let arity = List.length header in
  List.iter
    (fun r -> if List.length r <> arity then invalid_arg "Table.render: ragged row")
    rows;
  let all = header :: rows in
  let widths = Array.make arity 0 in
  List.iter
    (List.iteri (fun j cell -> widths.(j) <- max widths.(j) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  let emit_row cells =
    List.iteri
      (fun j cell ->
        let pad = widths.(j) - String.length cell in
        if j = 0 then begin
          Buffer.add_string buf cell;
          Buffer.add_string buf (String.make pad ' ')
        end
        else begin
          Buffer.add_string buf (String.make pad ' ');
          Buffer.add_string buf cell
        end;
        if j < arity - 1 then Buffer.add_string buf "  ")
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Buffer.add_string buf
    (String.make (Array.fold_left ( + ) (2 * (arity - 1)) widths) '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let render_kv pairs =
  let w = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs in
  let buf = Buffer.create 256 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_string buf (String.make (w - String.length k) ' ');
      Buffer.add_string buf "  ";
      Buffer.add_string buf v;
      Buffer.add_char buf '\n')
    pairs;
  Buffer.contents buf
