type curve = { name : string; points : (float * float) array }

let best_costs costs =
  Array.map (fun row -> Array.fold_left min infinity row) costs

let validate names costs =
  let m = List.length names in
  Array.iter
    (fun row ->
      if Array.length row <> m then invalid_arg "Perf_profile: ragged cost matrix";
      Array.iter (fun c -> if c < 0. then invalid_arg "Perf_profile: negative cost") row)
    costs

let ratio cost best =
  if cost = infinity then infinity
  else if best = 0. then if cost = 0. then 1. else infinity
  else cost /. best

let ratios costs ~column =
  let best = best_costs costs in
  let acc = Tt_util.Dynarray_compat.create () in
  Array.iteri
    (fun i row ->
      if best.(i) < infinity then
        Tt_util.Dynarray_compat.add_last acc (ratio row.(column) best.(i)))
    costs;
  Tt_util.Dynarray_compat.to_array acc

let fraction_within costs ~column ~tau =
  let rs = ratios costs ~column in
  if Array.length rs = 0 then 0.
  else
    Tt_util.Statistics.fraction (fun r -> r <= tau +. 1e-12) rs

let compute ?tau_max ?(samples = 64) ~names costs =
  validate names costs;
  let m = List.length names in
  let all_ratios = Array.init m (fun j -> ratios costs ~column:j) in
  let tau_max =
    match tau_max with
    | Some t -> t
    | None ->
        let worst = ref 1. in
        Array.iter
          (Array.iter (fun r -> if r < infinity && r > !worst then worst := r))
          all_ratios;
        Float.min (Float.max (!worst *. 1.05) 1.2) 16.
  in
  let grid =
    Array.init samples (fun k ->
        (* geometric spacing from 1 to tau_max *)
        exp (log tau_max *. float_of_int k /. float_of_int (samples - 1)))
  in
  List.mapi
    (fun j name ->
      let rs = all_ratios.(j) in
      let n = Array.length rs in
      let points =
        Array.map
          (fun tau ->
            let c =
              Array.fold_left (fun acc r -> if r <= tau +. 1e-12 then acc + 1 else acc) 0 rs
            in
            (tau, if n = 0 then 0. else float_of_int c /. float_of_int n))
          grid
      in
      { name; points })
    names

let dominant curves =
  let area c =
    Array.fold_left (fun acc (_, frac) -> acc +. frac) 0. c.points
  in
  match curves with
  | [] -> invalid_arg "Perf_profile.dominant: no curves"
  | first :: rest ->
      let best =
        List.fold_left (fun b c -> if area c > area b then c else b) first rest
      in
      best.name

let to_csv curves =
  match curves with
  | [] -> "tau\n"
  | first :: rest ->
      List.iter
        (fun c ->
          if Array.map fst c.points <> Array.map fst first.points then
            invalid_arg "Perf_profile.to_csv: mismatched tau grids")
        rest;
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "tau";
      List.iter
        (fun c ->
          Buffer.add_char buf ',';
          Buffer.add_string buf c.name)
        curves;
      Buffer.add_char buf '\n';
      Array.iteri
        (fun k (tau, _) ->
          Buffer.add_string buf (Printf.sprintf "%.6g" tau);
          List.iter
            (fun c -> Buffer.add_string buf (Printf.sprintf ",%.6g" (snd c.points.(k))))
            curves;
          Buffer.add_char buf '\n')
        first.points;
      Buffer.contents buf
