(** Plain-text table rendering for the paper's Tables I and II and the
    benchmark summaries. *)

val render : header:string list -> string list list -> string
(** Aligned table with a header rule. Columns are sized to the widest
    cell; the first column is left-aligned, the rest right-aligned.
    @raise Invalid_argument if a row has a different arity than the
    header. *)

val render_kv : (string * string) list -> string
(** Two-column key/value block (used for stats tables). *)
