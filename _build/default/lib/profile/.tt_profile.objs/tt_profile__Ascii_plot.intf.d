lib/profile/ascii_plot.mli: Perf_profile
