lib/profile/table.ml: Array Buffer List String
