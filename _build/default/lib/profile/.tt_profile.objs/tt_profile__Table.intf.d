lib/profile/table.mli:
