lib/profile/ascii_plot.ml: Array Buffer Float List Perf_profile Printf String
