lib/profile/perf_profile.ml: Array Buffer Float List Printf Tt_util
