lib/profile/perf_profile.mli:
