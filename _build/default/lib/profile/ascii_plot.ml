let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '~' |]

let render ?(width = 72) ?(height = 18) ?title curves =
  let buf = Buffer.create 4096 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  if curves = [] then Buffer.add_string buf "(no curves)\n"
  else begin
    let tau_lo, tau_hi =
      List.fold_left
        (fun (lo, hi) (c : Perf_profile.curve) ->
          Array.fold_left (fun (lo, hi) (t, _) -> (Float.min lo t, Float.max hi t)) (lo, hi)
            c.Perf_profile.points)
        (infinity, neg_infinity) curves
    in
    let tau_hi = if tau_hi <= tau_lo then tau_lo +. 1. else tau_hi in
    let canvas = Array.make_matrix height width ' ' in
    let xcol tau =
      let t = (log tau -. log tau_lo) /. (log tau_hi -. log tau_lo) in
      let c = int_of_float (t *. float_of_int (width - 1)) in
      max 0 (min (width - 1) c)
    in
    let yrow frac =
      let r = int_of_float ((1. -. frac) *. float_of_int (height - 1)) in
      max 0 (min (height - 1) r)
    in
    List.iteri
      (fun ci (c : Perf_profile.curve) ->
        let g = glyphs.(ci mod Array.length glyphs) in
        (* draw as a step function: fill horizontally between samples *)
        let last = ref None in
        Array.iter
          (fun (tau, frac) ->
            let x = xcol tau and y = yrow frac in
            (match !last with
            | Some (x0, y0) ->
                for xx = x0 + 1 to x do
                  canvas.(y0).(xx) <- g
                done;
                let lo = min y0 y and hi = max y0 y in
                for yy = lo to hi do
                  canvas.(yy).(x) <- g
                done
            | None -> canvas.(y).(x) <- g);
            last := Some (x, y))
          c.Perf_profile.points)
      curves;
    (* y axis labels on the left *)
    for r = 0 to height - 1 do
      let frac = 1. -. (float_of_int r /. float_of_int (height - 1)) in
      Buffer.add_string buf (Printf.sprintf "%4.2f |" frac);
      Buffer.add_string buf (String.init width (fun c -> canvas.(r).(c)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf ("     +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "      tau: %.2f %s %.2f (log scale)\n" tau_lo
         (String.make (max 1 (width - 24)) ' ')
         tau_hi);
    List.iteri
      (fun ci (c : Perf_profile.curve) ->
        Buffer.add_string buf
          (Printf.sprintf "      %c %s\n" glyphs.(ci mod Array.length glyphs)
             c.Perf_profile.name))
      curves
  end;
  Buffer.contents buf
