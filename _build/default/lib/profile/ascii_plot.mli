(** Terminal rendering of performance-profile curves, so that every
    figure of the paper can be "looked at" straight from
    [dune exec bench/main.exe]. One distinct glyph per curve, a legend, a
    y-axis in fractions and an x-axis in τ. *)

val render :
  ?width:int -> ?height:int -> ?title:string -> Perf_profile.curve list -> string
(** Plot the curves on a [width × height] character canvas (defaults
    72×18). Curves are drawn in legend order; later curves overwrite
    earlier ones where they collide. *)
