(** Out-of-core multifrontal execution.

    Plans the I/O with the {!Tt_core.Minio} heuristics on the raw
    assembly tree (the planner works in the out-tree orientation, so the
    bottom-up numeric schedule is reversed for planning) and then runs the
    {e numeric} factorization within the memory budget, physically moving
    evicted contribution blocks to a simulated secondary store and reading
    them back at assembly time. The measured write volume equals the
    planner's I/O volume by construction — asserted in the tests — because
    the raw assembly-tree edge weight [(µ-1)²] is exactly the word size of
    the contribution block. *)

type result = {
  factor : Factor.result;  (** The numeric factorization output. *)
  planned_io : int;  (** I/O volume promised by the eviction plan. *)
  measured_io : int;  (** Words actually written to the secondary store. *)
  peak_in_core : int;  (** Measured peak of in-core live words. *)
}

val plan :
  Tt_etree.Symbolic.t ->
  memory_words:int ->
  policy:Tt_core.Minio.policy ->
  schedule:int array ->
  Tt_core.Io_schedule.t option
(** The eviction plan for a bottom-up numeric [schedule], or [None] when
    the budget is below the largest frontal working set. *)

val run :
  Tt_sparse.Csr.t ->
  Tt_etree.Symbolic.t ->
  memory_words:int ->
  policy:Tt_core.Minio.policy ->
  schedule:int array ->
  (result, string) Stdlib.result
(** Factor within [memory_words]; [Error] describes an infeasible budget
    or an invalid schedule. *)

val run_supernodal :
  Tt_sparse.Csr.t ->
  Tt_etree.Symbolic.t ->
  Tt_etree.Amalgamation.t ->
  memory_words:int ->
  policy:Tt_core.Minio.policy ->
  schedule:int array ->
  (result, string) Stdlib.result
(** Out-of-core {e supernodal} factorization: the eviction plan is
    computed on the amalgamated assembly tree (whose weights are the
    exact supernodal front/CB sizes) and executed with one front per
    supernode; [schedule] is a bottom-up order over supernode indices.
    Planned and measured I/O coincide, as in {!run}. *)

val min_in_core_words : Tt_etree.Symbolic.t -> int
(** The multifrontal working-set lower bound
    [max_j (µ_j² + Σ over children c of (µ_c - 1)²)] — below this, no
    eviction plan exists. *)
