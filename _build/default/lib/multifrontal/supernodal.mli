(** Supernodal multifrontal Cholesky: one frontal matrix per
    {e amalgamated} supernode, eliminating all its [η] columns at once.

    This is the numeric counterpart of the paper's assembly trees: the
    frontal matrix of a group [g] lives on
    [members g ∪ struct (head g)], whose size is exactly [η + µ - 1]
    (each member's column pattern nests into its parent's, so the union
    telescopes). Consequently the paper's weights are {e exact} for every
    amalgamation level:

    - front words [(η + µ - 1)² = n + f] with [n = η² + 2η(µ-1)],
    - contribution block words [(µ - 1)² = f],

    and the measured live memory of a supernodal factorization equals the
    amalgamated assembly tree's {!Tt_core.Traversal.peak} word for word —
    asserted in the tests. Relaxed amalgamation stores explicit zeros
    inside the union pattern, trading memory for denser kernels, exactly
    as in production multifrontal solvers. *)

type plan = {
  amal : Tt_etree.Amalgamation.t;  (** The supernode partition. *)
  rows : int array array;
      (** [rows.(g)]: sorted front indices of supernode [g] — its [η]
          members first, then [struct (head g)] minus the head. *)
  parent : int array;  (** Supernode tree ([-1] for roots). *)
}

val plan : Tt_etree.Symbolic.t -> Tt_etree.Amalgamation.t -> plan
(** Build the per-supernode front structures.
    @raise Invalid_argument if the amalgamation does not belong to the
    symbolic factorization (size mismatch). *)

val front_words : plan -> int -> int
(** [(η + µ - 1)²] for supernode [g] — equals
    [node_weight + edge_weight] of the group. *)

val default_schedule : plan -> int array
(** Postorder of the supernode tree. *)

val run : Tt_sparse.Csr.t -> Tt_etree.Symbolic.t -> plan -> schedule:int array -> Factor.result
(** Factor the SPD matrix with one front per supernode, following the
    bottom-up [schedule] (supernode indices, children first). The
    returned profile has one entry per supernode step.
    @raise Invalid_argument on an invalid schedule.
    @raise Failure if a pivot is non-positive. *)
