type result = {
  factor : Factor.result;
  planned_io : int;
  measured_io : int;
  peak_in_core : int;
}

let raw_assembly (sym : Tt_etree.Symbolic.t) =
  let n = Array.length sym.Tt_etree.Symbolic.parent in
  let col_counts = Array.init n (Tt_etree.Symbolic.col_count sym) in
  Tt_etree.Assembly.of_etree_raw ~parent:sym.Tt_etree.Symbolic.parent ~col_counts

let min_in_core_words (sym : Tt_etree.Symbolic.t) =
  let asm = raw_assembly sym in
  Tt_core.Tree.max_mem_req asm.Tt_etree.Assembly.tree

(* Bottom-up column schedule -> out-tree traversal of the assembly tree
   (prepend the virtual root when the matrix is reducible). *)
let out_tree_order (asm : Tt_etree.Assembly.t) ~schedule =
  let n = Array.length schedule in
  let p = Tt_core.Tree.size asm.Tt_etree.Assembly.tree in
  let rev = Tt_core.Transform.reverse_traversal schedule in
  if asm.Tt_etree.Assembly.virtual_root then
    Array.init p (fun k -> if k = 0 then p - 1 else rev.(k - 1))
  else begin
    ignore n;
    rev
  end

let plan (sym : Tt_etree.Symbolic.t) ~memory_words ~policy ~schedule =
  let asm = raw_assembly sym in
  let order = out_tree_order asm ~schedule in
  Tt_core.Minio.run asm.Tt_etree.Assembly.tree ~memory:memory_words ~order policy

let run (a : Tt_sparse.Csr.t) (sym : Tt_etree.Symbolic.t) ~memory_words ~policy
    ~schedule =
  let n = a.Tt_sparse.Csr.nrows in
  let asm = raw_assembly sym in
  match plan sym ~memory_words ~policy ~schedule with
  | None ->
      Error
        (Printf.sprintf
           "memory budget %d words below the multifrontal working set %d" memory_words
           (min_in_core_words sym))
  | Some io_plan ->
      let planned_io =
        Tt_core.Io_schedule.io_volume asm.Tt_etree.Assembly.tree io_plan
      in
      (* tree node = column index for the raw assembly tree; evicted
         columns are those the plan writes out *)
      let evicted = Array.make n false in
      Array.iteri
        (fun node step ->
          if step <> Tt_core.Io_schedule.never && node < n then evicted.(node) <- true)
        io_plan.Tt_core.Io_schedule.tau;
      (* numeric factorization with a simulated secondary store: pending
         blocks of evicted columns live in [disk] instead of main memory *)
      let parent = sym.Tt_etree.Symbolic.parent in
      let children = Array.make n [] in
      for c = n - 1 downto 0 do
        if parent.(c) >= 0 then children.(parent.(c)) <- c :: children.(parent.(c))
      done;
      let disk : (int, Front.t) Hashtbl.t = Hashtbl.create 64 in
      let pending : Front.t option array = Array.make n None in
      let live = ref 0 in
      let peak = ref 0 in
      let measured_io = ref 0 in
      let profile = Array.make n 0 in
      let l_cols = Array.make n [||] in
      let bad = ref None in
      (try
         Array.iteri
           (fun step j ->
             (* read evicted children blocks back *)
             let child_blocks =
               List.filter_map
                 (fun c ->
                   match (pending.(c), Hashtbl.find_opt disk c) with
                   | Some cb, _ -> Some (c, cb)
                   | None, Some cb ->
                       Hashtbl.remove disk c;
                       live := !live + Front.words cb;
                       Some (c, cb)
                   | None, None -> None)
                 children.(j)
             in
             let front = Front.create sym.Tt_etree.Symbolic.col_struct.(j) in
             live := !live + Front.words front;
             if !live > !peak then peak := !live;
             profile.(step) <- !live;
             let m = Front.size front in
             let local = Hashtbl.create (2 * m) in
             Array.iteri
               (fun li g -> Hashtbl.replace local g li)
               sym.Tt_etree.Symbolic.col_struct.(j);
             Seq.iter
               (fun (col, v) ->
                 if col >= j then begin
                   let li = Hashtbl.find local col in
                   Front.add front li 0 v;
                   if li <> 0 then Front.add front 0 li v
                 end)
               (Tt_sparse.Csr.row a j);
             List.iter
               (fun (c, cb) ->
                 Front.extend_add ~into:front cb;
                 live := !live - Front.words cb;
                 pending.(c) <- None)
               child_blocks;
             let l_col, cb = Front.eliminate_pivot front in
             l_cols.(j) <- l_col;
             live := !live - Front.words front;
             if Front.size cb > 0 then
               if evicted.(j) then begin
                 (* write the block out right away *)
                 Hashtbl.replace disk j cb;
                 measured_io := !measured_io + Front.words cb
               end
               else begin
                 live := !live + Front.words cb;
                 if !live > !peak then peak := !live;
                 pending.(j) <- Some cb
               end)
           schedule
       with Failure msg -> bad := Some msg);
      (match !bad with
      | Some msg -> Error msg
      | None ->
          let t = Tt_sparse.Triplet.create ~nrows:n ~ncols:n in
          for j = 0 to n - 1 do
            Array.iteri
              (fun li g -> Tt_sparse.Triplet.add t g j l_cols.(j).(li))
              sym.Tt_etree.Symbolic.col_struct.(j)
          done;
          Ok
            { factor =
                { Factor.l = Tt_sparse.Csr.of_triplet t;
                  peak_words = !peak;
                  profile };
              planned_io;
              measured_io = !measured_io;
              peak_in_core = !peak })

let run_supernodal (a : Tt_sparse.Csr.t) (sym : Tt_etree.Symbolic.t)
    (amal : Tt_etree.Amalgamation.t) ~memory_words ~policy ~schedule =
  let asm = Tt_etree.Assembly.of_amalgamation amal in
  let tree = asm.Tt_etree.Assembly.tree in
  let gcount = Array.length amal.Tt_etree.Amalgamation.groups in
  if Array.length schedule <> gcount then Error "wrong schedule length"
  else begin
    let p = Tt_core.Tree.size tree in
    let order =
      if asm.Tt_etree.Assembly.virtual_root then
        Array.init p (fun k -> if k = 0 then p - 1 else schedule.(gcount - k))
      else Tt_core.Transform.reverse_traversal schedule
    in
    match Tt_core.Minio.run tree ~memory:memory_words ~order policy with
    | None ->
        Error
          (Printf.sprintf "memory budget %d words below the supernodal working set %d"
             memory_words
             (Tt_core.Tree.max_mem_req tree))
    | Some io_plan ->
        let planned_io = Tt_core.Io_schedule.io_volume tree io_plan in
        let evicted = Array.make gcount false in
        Array.iteri
          (fun node step ->
            if step <> Tt_core.Io_schedule.never && node < gcount then
              evicted.(node) <- true)
          io_plan.Tt_core.Io_schedule.tau;
        (* supernodal numeric execution with a simulated secondary store *)
        let plan = Supernodal.plan sym amal in
        let n = a.Tt_sparse.Csr.nrows in
        let children = Array.make gcount [] in
        for g = gcount - 1 downto 0 do
          if plan.Supernodal.parent.(g) >= 0 then
            children.(plan.Supernodal.parent.(g)) <-
              g :: children.(plan.Supernodal.parent.(g))
        done;
        let disk : (int, Front.t) Hashtbl.t = Hashtbl.create 64 in
        let pending : Front.t option array = Array.make gcount None in
        let live = ref 0 in
        let peak = ref 0 in
        let measured_io = ref 0 in
        let profile = Array.make gcount 0 in
        let l_cols : (int * float) list array = Array.make n [] in
        let bad = ref None in
        (try
           Array.iteri
             (fun step g ->
               let child_blocks =
                 List.filter_map
                   (fun c ->
                     match (pending.(c), Hashtbl.find_opt disk c) with
                     | Some cb, _ -> Some cb
                     | None, Some cb ->
                         Hashtbl.remove disk c;
                         live := !live + Front.words cb;
                         Some cb
                     | None, None -> None)
                   children.(g)
               in
               let rows = plan.Supernodal.rows.(g) in
               let front = Front.create rows in
               live := !live + Front.words front;
               if !live > !peak then peak := !live;
               profile.(step) <- !live;
               let m = Array.length rows in
               let local = Hashtbl.create (2 * m) in
               Array.iteri (fun li gi -> Hashtbl.replace local gi li) rows;
               List.iter
                 (fun col ->
                   let lcol = Hashtbl.find local col in
                   Seq.iter
                     (fun (r, v) ->
                       if r >= col then
                         match Hashtbl.find_opt local r with
                         | Some lr ->
                             Front.add front lr lcol v;
                             if lr <> lcol then Front.add front lcol lr v
                         | None -> ())
                     (Tt_sparse.Csr.row a col))
                 plan.Supernodal.amal.Tt_etree.Amalgamation.groups.(g)
                   .Tt_etree.Amalgamation.members;
               List.iter
                 (fun cb ->
                   Front.extend_add ~into:front cb;
                   live := !live - Front.words cb)
                 child_blocks;
               List.iter (fun c -> pending.(c) <- None) children.(g);
               let members =
                 List.sort compare
                   plan.Supernodal.amal.Tt_etree.Amalgamation.groups.(g)
                     .Tt_etree.Amalgamation.members
               in
               let cols, cb = Front.eliminate_pivots front (List.length members) in
               List.iteri
                 (fun k col ->
                   let l = List.nth cols k in
                   l_cols.(col) <-
                     Array.to_list (Array.mapi (fun i v -> (rows.(k + i), v)) l))
                 members;
               live := !live - Front.words front;
               if Front.size cb > 0 then
                 if evicted.(g) then begin
                   Hashtbl.replace disk g cb;
                   measured_io := !measured_io + Front.words cb
                 end
                 else begin
                   live := !live + Front.words cb;
                   if !live > !peak then peak := !live;
                   pending.(g) <- Some cb
                 end)
             schedule
         with Failure msg -> bad := Some msg);
        (match !bad with
        | Some msg -> Error msg
        | None ->
            let t = Tt_sparse.Triplet.create ~nrows:n ~ncols:n in
            Array.iteri
              (fun col entries ->
                List.iter (fun (r, v) -> Tt_sparse.Triplet.add t r col v) entries)
              l_cols;
            Ok
              { factor =
                  { Factor.l = Tt_sparse.Csr.of_triplet t;
                    peak_words = !peak;
                    profile };
                planned_io;
                measured_io = !measured_io;
                peak_in_core = !peak })
  end
