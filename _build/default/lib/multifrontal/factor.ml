module D = Tt_util.Dynarray_compat

type result = { l : Tt_sparse.Csr.t; peak_words : int; profile : int array }

let default_schedule (sym : Tt_etree.Symbolic.t) =
  let n = Array.length sym.Tt_etree.Symbolic.parent in
  let children = Array.make n [] in
  let roots = ref [] in
  for j = n - 1 downto 0 do
    match sym.Tt_etree.Symbolic.parent.(j) with
    | -1 -> roots := j :: !roots
    | p -> children.(p) <- j :: children.(p)
  done;
  let order = D.create () in
  (* iterative postorder *)
  let rec visit j =
    List.iter visit children.(j);
    D.add_last order j
  in
  List.iter visit !roots;
  D.to_array order

let run (a : Tt_sparse.Csr.t) (sym : Tt_etree.Symbolic.t) ~schedule =
  let n = a.Tt_sparse.Csr.nrows in
  if Array.length schedule <> n then invalid_arg "Factor.run: wrong schedule length";
  let parent = sym.Tt_etree.Symbolic.parent in
  let children = Array.make n [] in
  for c = n - 1 downto 0 do
    if parent.(c) >= 0 then children.(parent.(c)) <- c :: children.(parent.(c))
  done;
  let processed = Array.make n false in
  (* pending contribution blocks, one slot per column *)
  let pending : Front.t option array = Array.make n None in
  let live = ref 0 in
  let peak = ref 0 in
  let profile = Array.make n 0 in
  (* factor columns, collected as (col, rows, values) *)
  let l_cols = Array.make n [||] in
  Array.iteri
    (fun step j ->
      if j < 0 || j >= n || processed.(j) then invalid_arg "Factor.run: bad schedule";
      let structure = sym.Tt_etree.Symbolic.col_struct.(j) in
      (* children must be done and their blocks pending *)
      let child_blocks = ref [] in
      List.iter
        (fun c ->
          if not processed.(c) then invalid_arg "Factor.run: child after parent";
          match pending.(c) with
          | Some cb -> child_blocks := (c, cb) :: !child_blocks
          | None -> ())
        children.(j);
      (* allocate the front while the children blocks are still live *)
      let front = Front.create structure in
      live := !live + Front.words front;
      if !live > !peak then peak := !live;
      profile.(step) <- !live;
      (* assemble original entries of A (lower column j) *)
      let m = Front.size front in
      let local = Hashtbl.create (2 * m) in
      Array.iteri (fun li g -> Hashtbl.replace local g li) structure;
      Seq.iter
        (fun (col, v) ->
          (* row j of A gives column j entries by symmetry *)
          if col >= j then begin
            let li = Hashtbl.find local col in
            Front.add front li 0 v;
            if li <> 0 then Front.add front 0 li v
          end)
        (Tt_sparse.Csr.row a j);
      (* extend-add the children contribution blocks, then free them *)
      List.iter
        (fun (c, cb) ->
          Front.extend_add ~into:front cb;
          live := !live - Front.words cb;
          pending.(c) <- None)
        !child_blocks;
      (* eliminate the pivot *)
      let l_col, cb = Front.eliminate_pivot front in
      l_cols.(j) <- l_col;
      live := !live - Front.words front;
      if Front.size cb > 0 then begin
        live := !live + Front.words cb;
        if !live > !peak then peak := !live;
        pending.(j) <- Some cb
      end;
      processed.(j) <- true)
    schedule;
  (* assemble L as CSR (row-major lower triangle) *)
  let t = Tt_sparse.Triplet.create ~nrows:n ~ncols:n in
  for j = 0 to n - 1 do
    let structure = sym.Tt_etree.Symbolic.col_struct.(j) in
    Array.iteri (fun li g -> Tt_sparse.Triplet.add t g j l_cols.(j).(li)) structure
  done;
  { l = Tt_sparse.Csr.of_triplet t; peak_words = !peak; profile }

let solve (l : Tt_sparse.Csr.t) b =
  let n = l.Tt_sparse.Csr.nrows in
  if Array.length b <> n then invalid_arg "Factor.solve: dimension mismatch";
  (* L is stored row-major lower-triangular: forward substitution row by
     row; for the transpose solve, traverse rows in reverse using L's rows
     as columns of Lᵀ *)
  let y = Array.copy b in
  for i = 0 to n - 1 do
    let diag = ref 1. in
    let acc = ref y.(i) in
    for k = l.Tt_sparse.Csr.row_ptr.(i) to l.Tt_sparse.Csr.row_ptr.(i + 1) - 1 do
      let j = l.Tt_sparse.Csr.col_idx.(k) in
      if j < i then acc := !acc -. (l.Tt_sparse.Csr.values.(k) *. y.(j))
      else if j = i then diag := l.Tt_sparse.Csr.values.(k)
    done;
    y.(i) <- !acc /. !diag
  done;
  let x = y in
  for i = n - 1 downto 0 do
    (* x.(i) currently holds y.(i) minus contributions subtracted by later
       rows' updates (scatter form): divide then scatter to earlier rows *)
    let diag = ref 1. in
    for k = l.Tt_sparse.Csr.row_ptr.(i) to l.Tt_sparse.Csr.row_ptr.(i + 1) - 1 do
      if l.Tt_sparse.Csr.col_idx.(k) = i then diag := l.Tt_sparse.Csr.values.(k)
    done;
    x.(i) <- x.(i) /. !diag;
    for k = l.Tt_sparse.Csr.row_ptr.(i) to l.Tt_sparse.Csr.row_ptr.(i + 1) - 1 do
      let j = l.Tt_sparse.Csr.col_idx.(k) in
      if j < i then x.(j) <- x.(j) -. (l.Tt_sparse.Csr.values.(k) *. x.(i))
    done
  done;
  x

let residual_norm (a : Tt_sparse.Csr.t) (l : Tt_sparse.Csr.t) =
  let n = a.Tt_sparse.Csr.nrows in
  let da = Tt_sparse.Csr.to_dense a in
  let dl = Tt_sparse.Csr.to_dense l in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0. in
      for k = 0 to n - 1 do
        acc := !acc +. (dl.(i).(k) *. dl.(j).(k))
      done;
      let d = Float.abs (da.(i).(j) -. !acc) in
      if d > !worst then worst := d
    done
  done;
  !worst
