type result = { factor : Factor.result; max_stack_blocks : int }

let is_postorder_schedule (sym : Tt_etree.Symbolic.t) schedule =
  (* bottom-up contiguity: when a column executes, everything since the
     start of its subtree must belong to its subtree; equivalently each
     node's position is one past the positions of all its descendants,
     which occupy a contiguous slice *)
  let n = Array.length sym.Tt_etree.Symbolic.parent in
  if Array.length schedule <> n then false
  else begin
    let pos = Array.make n (-1) in
    let ok = ref true in
    Array.iteri
      (fun step j -> if j >= 0 && j < n && pos.(j) = -1 then pos.(j) <- step else ok := false)
      schedule;
    if not !ok then false
    else begin
      (* subtree sizes *)
      let size = Array.make n 1 in
      for j = 0 to n - 1 do
        let p = sym.Tt_etree.Symbolic.parent.(j) in
        if p >= 0 then size.(p) <- size.(p) + size.(j)
      done;
      (* contiguity: pos.(j) = max pos over subtree(j), and the subtree
         occupies [pos j - size j + 1, pos j] *)
      let lo = Array.map (fun p -> p) pos in
      (* compute min position of each subtree bottom-up *)
      for j = 0 to n - 1 do
        let p = sym.Tt_etree.Symbolic.parent.(j) in
        if p >= 0 then lo.(p) <- min lo.(p) lo.(j)
      done;
      Array.for_all2
        (fun l (s, p) -> p - l + 1 = s)
        lo
        (Array.init n (fun j -> (size.(j), pos.(j))))
    end
  end

let run (a : Tt_sparse.Csr.t) (sym : Tt_etree.Symbolic.t) ~schedule =
  let n = a.Tt_sparse.Csr.nrows in
  if Array.length schedule <> n then Error "wrong schedule length"
  else begin
    let parent = sym.Tt_etree.Symbolic.parent in
    let child_count = Array.make n 0 in
    Array.iter (fun p -> if p >= 0 then child_count.(p) <- child_count.(p) + 1) parent;
    (* the stack holds (column, contribution block) pairs *)
    let stack : (int * Front.t) list ref = ref [] in
    let depth = ref 0 in
    let max_depth = ref 0 in
    let live = ref 0 in
    let peak = ref 0 in
    let profile = Array.make n 0 in
    let l_cols = Array.make n [||] in
    let error = ref None in
    let processed = Array.make n false in
    (try
       Array.iteri
         (fun step j ->
           if j < 0 || j >= n || processed.(j) then failwith "bad schedule entry";
           processed.(j) <- true;
           let structure = sym.Tt_etree.Symbolic.col_struct.(j) in
           let front = Front.create structure in
           live := !live + Front.words front;
           if !live > !peak then peak := !live;
           profile.(step) <- !live;
           let m = Front.size front in
           let local = Hashtbl.create (2 * m) in
           Array.iteri (fun li g -> Hashtbl.replace local g li) structure;
           Seq.iter
             (fun (col, v) ->
               if col >= j then begin
                 let li = Hashtbl.find local col in
                 Front.add front li 0 v;
                 if li <> 0 then Front.add front 0 li v
               end)
             (Tt_sparse.Csr.row a j);
           (* pop exactly the children: LIFO discipline *)
           for _ = 1 to child_count.(j) do
             match !stack with
             | [] -> failwith "stack underflow"
             | (c, cb) :: rest ->
                 if parent.(c) <> j then
                   failwith
                     (Printf.sprintf
                        "stack discipline violated at column %d: top block belongs \
                         to column %d (schedule is not a postorder)"
                        j c);
                 Front.extend_add ~into:front cb;
                 live := !live - Front.words cb;
                 decr depth;
                 stack := rest
           done;
           let l, cb = Front.eliminate_pivot front in
           l_cols.(j) <- l;
           live := !live - Front.words front;
           if Front.size cb > 0 then begin
             live := !live + Front.words cb;
             if !live > !peak then peak := !live;
             stack := (j, cb) :: !stack;
             incr depth;
             if !depth > !max_depth then max_depth := !depth
           end)
         schedule
     with Failure msg -> error := Some msg);
    match !error with
    | Some msg -> Error msg
    | None ->
        let t = Tt_sparse.Triplet.create ~nrows:n ~ncols:n in
        for j = 0 to n - 1 do
          Array.iteri
            (fun li g -> Tt_sparse.Triplet.add t g j l_cols.(j).(li))
            sym.Tt_etree.Symbolic.col_struct.(j)
        done;
        Ok
          { factor =
              { Factor.l = Tt_sparse.Csr.of_triplet t; peak_words = !peak; profile };
            max_stack_blocks = !max_depth
          }
  end
