type t = { rows : int array; a : float array }

let create rows =
  let m = Array.length rows in
  { rows; a = Array.make (m * m) 0. }

let size f = Array.length f.rows
let words f = Array.length f.a
let get f i j = f.a.((j * size f) + i)
let set f i j v = f.a.((j * size f) + i) <- v
let add f i j v = f.a.((j * size f) + i) <- f.a.((j * size f) + i) +. v

let extend_add ~into cb =
  let m_into = size into in
  (* map each global row of cb to its local index in into (both sorted:
     single merge pass) *)
  let m_cb = size cb in
  let map = Array.make m_cb (-1) in
  let i = ref 0 in
  for k = 0 to m_cb - 1 do
    while !i < m_into && into.rows.(!i) < cb.rows.(k) do
      incr i
    done;
    if !i >= m_into || into.rows.(!i) <> cb.rows.(k) then
      invalid_arg "Front.extend_add: contribution row missing from front";
    map.(k) <- !i
  done;
  for j = 0 to m_cb - 1 do
    let tj = map.(j) in
    for i2 = 0 to m_cb - 1 do
      let v = cb.a.((j * m_cb) + i2) in
      if v <> 0. then begin
        let ti = map.(i2) in
        into.a.((tj * m_into) + ti) <- into.a.((tj * m_into) + ti) +. v
      end
    done
  done

let eliminate_pivot f =
  let m = size f in
  let a00 = f.a.(0) in
  if a00 <= 0. then failwith "Front.eliminate_pivot: non-positive pivot";
  let d = sqrt a00 in
  let l = Array.init m (fun i -> if i = 0 then d else f.a.(i) /. d) in
  let cb = create (Array.sub f.rows 1 (m - 1)) in
  let mc = m - 1 in
  for j = 1 to m - 1 do
    for i = 1 to m - 1 do
      cb.a.(((j - 1) * mc) + (i - 1)) <- f.a.((j * m) + i) -. (l.(i) *. l.(j))
    done
  done;
  (l, cb)

let eliminate_pivots f k =
  let m = size f in
  if k < 0 || k > m then invalid_arg "Front.eliminate_pivots: k out of range";
  (* right-looking: factor column j, update the trailing block in place *)
  let cols = ref [] in
  for j = 0 to k - 1 do
    let ajj = f.a.((j * m) + j) in
    if ajj <= 0. then failwith "Front.eliminate_pivot: non-positive pivot";
    let d = sqrt ajj in
    let col = Array.init (m - j) (fun i -> if i = 0 then d else f.a.((j * m) + j + i) /. d) in
    for c = j + 1 to m - 1 do
      let lc = col.(c - j) in
      if lc <> 0. then
        for r = j + 1 to m - 1 do
          f.a.((c * m) + r) <- f.a.((c * m) + r) -. (col.(r - j) *. lc)
        done
    done;
    cols := col :: !cols
  done;
  let cb = create (Array.sub f.rows k (m - k)) in
  let mc = m - k in
  for c = 0 to mc - 1 do
    for r = 0 to mc - 1 do
      cb.a.((c * mc) + r) <- f.a.(((c + k) * m) + (r + k))
    done
  done;
  (List.rev !cols, cb)
