lib/multifrontal/ooc_sim.mli: Factor Stdlib Tt_core Tt_etree Tt_sparse
