lib/multifrontal/front.ml: Array List
