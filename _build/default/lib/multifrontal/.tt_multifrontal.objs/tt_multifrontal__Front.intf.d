lib/multifrontal/front.mli:
