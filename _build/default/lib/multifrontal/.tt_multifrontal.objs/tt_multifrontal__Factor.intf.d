lib/multifrontal/factor.mli: Tt_etree Tt_sparse
