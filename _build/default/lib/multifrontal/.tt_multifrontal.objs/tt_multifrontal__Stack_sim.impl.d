lib/multifrontal/stack_sim.ml: Array Factor Front Hashtbl Printf Seq Tt_etree Tt_sparse
