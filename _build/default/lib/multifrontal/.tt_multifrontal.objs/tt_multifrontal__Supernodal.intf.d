lib/multifrontal/supernodal.mli: Factor Tt_etree Tt_sparse
