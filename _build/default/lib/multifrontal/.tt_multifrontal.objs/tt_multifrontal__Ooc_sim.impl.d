lib/multifrontal/ooc_sim.ml: Array Factor Front Hashtbl List Printf Seq Supernodal Tt_core Tt_etree Tt_sparse
