lib/multifrontal/supernodal.ml: Array Factor Front Hashtbl List Seq Tt_etree Tt_sparse Tt_util
