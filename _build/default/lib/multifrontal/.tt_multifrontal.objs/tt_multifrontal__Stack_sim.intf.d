lib/multifrontal/stack_sim.mli: Factor Stdlib Tt_etree Tt_sparse
