lib/multifrontal/factor.ml: Array Float Front Hashtbl List Seq Tt_etree Tt_sparse Tt_util
