(** Frontal matrices: small dense symmetric matrices indexed by global
    row lists, with the extend–add assembly operation at the heart of the
    multifrontal method. Only the lower triangle is meaningful; storage is
    a full column-major square for simplicity. *)

type t = {
  rows : int array;  (** Sorted global indices of the front. *)
  a : float array;  (** Column-major [m*m] dense storage, [m = |rows|]. *)
}

val create : int array -> t
(** Zero front on the given sorted global rows. *)

val size : t -> int
(** The dimension [m]. *)

val words : t -> int
(** Memory footprint in words ([m²]) — the unit of the memory
    accounting. *)

val get : t -> int -> int -> float
(** [get f i j] with {e local} indices. *)

val set : t -> int -> int -> float -> unit
(** [set f i j v] with local indices (the caller maintains symmetry). *)

val add : t -> int -> int -> float -> unit
(** Accumulate into a local entry. *)

val extend_add : into:t -> t -> unit
(** [extend_add ~into cb] scatters the contribution block [cb] into the
    larger front [into]: every global index of [cb] must appear in
    [into].
    @raise Invalid_argument otherwise. *)

val eliminate_pivot : t -> float array * t
(** Eliminate the first variable of the front (its smallest global row):
    returns the computed factor column (length [m], [l.(0)] the pivot's
    diagonal entry [sqrt a00]) and the Schur complement on the remaining
    [m-1] rows.
    @raise Failure if the pivot is not strictly positive (matrix not
    SPD). *)

val eliminate_pivots : t -> int -> float array list * t
(** [eliminate_pivots f k] eliminates the first [k] variables in place
    (right-looking dense factorization of the leading block): returns the
    [k] factor columns (column [j] has length [m - j], indexed by
    [rows.(j ..)]) and the Schur complement on the remaining [m - k]
    rows, without allocating intermediate fronts.
    @raise Invalid_argument if [k] is out of range.
    @raise Failure if a pivot is not strictly positive. *)
