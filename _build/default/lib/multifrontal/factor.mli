(** Numeric multifrontal Cholesky factorization, driven by an arbitrary
    bottom-up schedule, with exact live-memory accounting.

    At column [j] the method allocates the frontal matrix on
    [struct j] (the symbolic column structure), assembles the original
    entries of A and the children's contribution blocks (extend–add),
    eliminates the pivot, and stores the resulting contribution block
    until the parent column is processed. Live memory = all pending
    contribution blocks + the current front, measured in words; the front
    is allocated {e before} the children blocks are released, matching
    Equation (1) of the paper: with the raw assembly-tree weights
    ([f = (µ-1)², n = 2µ-1]) the measured per-step usage coincides
    exactly with {!Tt_core.Transform.in_tree_peak}. *)

type result = {
  l : Tt_sparse.Csr.t;  (** The Cholesky factor (lower triangular). *)
  peak_words : int;  (** Maximum live words over the factorization. *)
  profile : int array;
      (** Live words during the processing of each schedule step. *)
}

val run : Tt_sparse.Csr.t -> Tt_etree.Symbolic.t -> schedule:int array -> result
(** [run a sym ~schedule] factors the SPD matrix [a]. [schedule] is a
    bottom-up (children first) ordering of the columns, e.g. the reverse
    of a MinMemory traversal of the assembly tree.
    @raise Invalid_argument if the schedule is not a valid bottom-up
    order.
    @raise Failure if a pivot is non-positive (matrix not SPD). *)

val default_schedule : Tt_etree.Symbolic.t -> int array
(** A postorder of the elimination tree (the classic multifrontal
    stack order). *)

val solve : Tt_sparse.Csr.t -> float array -> float array
(** [solve l b] solves [L Lᵀ x = b] by forward and backward
    substitution. *)

val residual_norm : Tt_sparse.Csr.t -> Tt_sparse.Csr.t -> float
(** [residual_norm a l] is [max_ij |A - L Lᵀ|] — the factorization
    accuracy check used by the tests. *)
