module D = Tt_util.Dynarray_compat

type plan = {
  amal : Tt_etree.Amalgamation.t;
  rows : int array array;
  parent : int array;
}

let plan (sym : Tt_etree.Symbolic.t) (amal : Tt_etree.Amalgamation.t) =
  let n = Array.length sym.Tt_etree.Symbolic.parent in
  if Array.length amal.Tt_etree.Amalgamation.group_of <> n then
    invalid_arg "Supernodal.plan: amalgamation size mismatch";
  let rows =
    Array.map
      (fun (g : Tt_etree.Amalgamation.group) ->
        match g.Tt_etree.Amalgamation.members with
        | [] -> invalid_arg "Supernodal.plan: empty group"
        | head :: _ as members ->
            (* members are strictly below the head except the head itself;
               struct(head) covers everything at or above it *)
            let ms = Array.of_list members in
            Array.sort compare ms;
            let tail =
              Array.of_seq
                (Seq.filter (fun i -> i <> head)
                   (Array.to_seq sym.Tt_etree.Symbolic.col_struct.(head)))
            in
            Array.append ms tail)
      amal.Tt_etree.Amalgamation.groups
  in
  let parent =
    Array.map (fun g -> g.Tt_etree.Amalgamation.parent) amal.Tt_etree.Amalgamation.groups
  in
  { amal; rows; parent }

let front_words p g =
  let m = Array.length p.rows.(g) in
  m * m

let default_schedule p =
  let gcount = Array.length p.parent in
  let children = Array.make gcount [] in
  let roots = ref [] in
  for g = gcount - 1 downto 0 do
    match p.parent.(g) with
    | -1 -> roots := g :: !roots
    | q -> children.(q) <- g :: children.(q)
  done;
  let order = D.create () in
  let rec visit g =
    List.iter visit children.(g);
    D.add_last order g
  in
  List.iter visit !roots;
  D.to_array order

let run (a : Tt_sparse.Csr.t) (_sym : Tt_etree.Symbolic.t) p ~schedule =
  let gcount = Array.length p.parent in
  if Array.length schedule <> gcount then
    invalid_arg "Supernodal.run: wrong schedule length";
  let n = a.Tt_sparse.Csr.nrows in
  let children = Array.make gcount [] in
  for g = gcount - 1 downto 0 do
    if p.parent.(g) >= 0 then children.(p.parent.(g)) <- g :: children.(p.parent.(g))
  done;
  let processed = Array.make gcount false in
  let pending : Front.t option array = Array.make gcount None in
  let live = ref 0 in
  let peak = ref 0 in
  let profile = Array.make gcount 0 in
  let l_cols : (int * float) list array = Array.make n [] in
  Array.iteri
    (fun step g ->
      if g < 0 || g >= gcount || processed.(g) then
        invalid_arg "Supernodal.run: bad schedule";
      List.iter
        (fun c ->
          if not processed.(c) then invalid_arg "Supernodal.run: child after parent")
        children.(g);
      let rows = p.rows.(g) in
      let front = Front.create rows in
      live := !live + Front.words front;
      if !live > !peak then peak := !live;
      profile.(step) <- !live;
      (* assemble the original entries of every member column *)
      let m = Array.length rows in
      let local = Hashtbl.create (2 * m) in
      Array.iteri (fun li gidx -> Hashtbl.replace local gidx li) rows;
      List.iter
        (fun col ->
          let lcol = Hashtbl.find local col in
          Seq.iter
            (fun (r, v) ->
              (* row [col] of the symmetric matrix gives column [col];
                 keep entries at or below the diagonal that live in the
                 front *)
              if r >= col then
                match Hashtbl.find_opt local r with
                | Some lr ->
                    Front.add front lr lcol v;
                    if lr <> lcol then Front.add front lcol lr v
                | None -> ())
            (Tt_sparse.Csr.row a col))
        p.amal.Tt_etree.Amalgamation.groups.(g).Tt_etree.Amalgamation.members;
      (* extend-add the children contribution blocks *)
      List.iter
        (fun c ->
          match pending.(c) with
          | Some cb ->
              Front.extend_add ~into:front cb;
              live := !live - Front.words cb;
              pending.(c) <- None
          | None -> ())
        children.(g);
      (* eliminate the member pivots in place, lowest column first *)
      let members =
        List.sort compare p.amal.Tt_etree.Amalgamation.groups.(g).Tt_etree.Amalgamation.members
      in
      let eta = List.length members in
      List.iteri
        (fun k col ->
          if rows.(k) <> col then invalid_arg "Supernodal.run: front misaligned")
        members;
      let cols, cb = Front.eliminate_pivots front eta in
      List.iteri
        (fun k col ->
          let l = List.nth cols k in
          l_cols.(col) <-
            Array.to_list (Array.mapi (fun i v -> (rows.(k + i), v)) l))
        members;
      live := !live - Front.words front;
      if Front.size cb > 0 then begin
        live := !live + Front.words cb;
        if !live > !peak then peak := !live;
        pending.(g) <- Some cb
      end;
      processed.(g) <- true)
    schedule;
  let t = Tt_sparse.Triplet.create ~nrows:n ~ncols:n in
  Array.iteri
    (fun col entries -> List.iter (fun (r, v) -> Tt_sparse.Triplet.add t r col v) entries)
    l_cols;
  { Factor.l = Tt_sparse.Csr.of_triplet t; peak_words = !peak; profile }
