(** The classical multifrontal {e stack}: why solvers love postorders.

    Production multifrontal codes (MUMPS et al., §II-A and §IV-A of the
    paper) keep contribution blocks in a LIFO stack: with a postorder
    schedule, when a column is eliminated its children's blocks are
    exactly the top of the stack, so a contiguous stack allocator
    suffices. This module runs the numeric factorization with an explicit
    stack and {e fails} when a pop does not return a child of the current
    column — which happens precisely when the schedule is not a
    postorder. It demonstrates operationally what the paper's
    MinMem-vs-PostOrder discussion is about: optimal traversals may
    interleave subtrees and therefore need random-access block storage,
    while postorders run on a plain stack. *)

type result = {
  factor : Factor.result;  (** Same outputs as {!Factor.run}. *)
  max_stack_blocks : int;  (** Maximum number of stacked blocks. *)
}

val run :
  Tt_sparse.Csr.t ->
  Tt_etree.Symbolic.t ->
  schedule:int array ->
  (result, string) Stdlib.result
(** Factor with a LIFO contribution-block stack. [Error] reports the
    first stack-discipline violation (non-postorder schedule) or a
    numerical failure; on success the memory accounting coincides with
    {!Factor.run} on the same schedule (asserted in the tests). *)

val is_postorder_schedule : Tt_etree.Symbolic.t -> int array -> bool
(** Whether a bottom-up schedule visits every subtree contiguously (the
    condition under which {!run} succeeds). *)
