type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

(* Build from unsorted (row, col, value) arrays, summing duplicates. Two
   counting-sort passes keep construction O(nnz + n). *)
let compress ~nrows ~ncols rows cols vals =
  let m = Array.length rows in
  let counts = Array.make (nrows + 1) 0 in
  Array.iter (fun i -> counts.(i + 1) <- counts.(i + 1) + 1) rows;
  for i = 0 to nrows - 1 do
    counts.(i + 1) <- counts.(i + 1) + counts.(i)
  done;
  let start = Array.copy counts in
  let cj = Array.make m 0 and cv = Array.make m 0. in
  let fill = Array.copy start in
  for k = 0 to m - 1 do
    let i = rows.(k) in
    cj.(fill.(i)) <- cols.(k);
    cv.(fill.(i)) <- vals.(k);
    fill.(i) <- fill.(i) + 1
  done;
  (* sort each row by column and sum duplicates *)
  let out_ptr = Array.make (nrows + 1) 0 in
  let oj = Array.make m 0 and ov = Array.make m 0. in
  let pos = ref 0 in
  for i = 0 to nrows - 1 do
    out_ptr.(i) <- !pos;
    let lo = start.(i) and hi = start.(i + 1) in
    let len = hi - lo in
    if len > 0 then begin
      let idx = Array.init len (fun k -> lo + k) in
      Array.sort (fun a b -> compare cj.(a) cj.(b)) idx;
      let prev = ref (-1) in
      Array.iter
        (fun k ->
          if cj.(k) = !prev then ov.(!pos - 1) <- ov.(!pos - 1) +. cv.(k)
          else begin
            oj.(!pos) <- cj.(k);
            ov.(!pos) <- cv.(k);
            prev := cj.(k);
            incr pos
          end)
        idx
    end
  done;
  out_ptr.(nrows) <- !pos;
  { nrows;
    ncols;
    row_ptr = out_ptr;
    col_idx = Array.sub oj 0 !pos;
    values = Array.sub ov 0 !pos }

let of_triplet t =
  let m = Triplet.nnz t in
  let rows = Array.make m 0 and cols = Array.make m 0 and vals = Array.make m 0. in
  let k = ref 0 in
  Triplet.iter
    (fun i j v ->
      rows.(!k) <- i;
      cols.(!k) <- j;
      vals.(!k) <- v;
      incr k)
    t;
  compress ~nrows:(Triplet.nrows t) ~ncols:(Triplet.ncols t) rows cols vals

let of_dense d =
  let nrows = Array.length d in
  let ncols = if nrows = 0 then 0 else Array.length d.(0) in
  let t = Triplet.create ~nrows ~ncols in
  Array.iteri
    (fun i r -> Array.iteri (fun j v -> if v <> 0. then Triplet.add t i j v) r)
    d;
  of_triplet t

let to_dense a =
  let d = Array.make_matrix a.nrows a.ncols 0. in
  for i = 0 to a.nrows - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      d.(i).(a.col_idx.(k)) <- a.values.(k)
    done
  done;
  d

let nnz a = a.row_ptr.(a.nrows)

let get a i j =
  let lo = ref a.row_ptr.(i) and hi = ref (a.row_ptr.(i + 1) - 1) in
  let res = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = a.col_idx.(mid) in
    if c = j then begin
      res := a.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let row a i =
  let lo = a.row_ptr.(i) and hi = a.row_ptr.(i + 1) in
  let rec gen k () =
    if k >= hi then Seq.Nil else Seq.Cons ((a.col_idx.(k), a.values.(k)), gen (k + 1))
  in
  gen lo

let transpose a =
  let m = nnz a in
  let rows = Array.make m 0 and cols = Array.make m 0 and vals = Array.make m 0. in
  let k = ref 0 in
  for i = 0 to a.nrows - 1 do
    for e = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      rows.(!k) <- a.col_idx.(e);
      cols.(!k) <- i;
      vals.(!k) <- a.values.(e);
      incr k
    done
  done;
  compress ~nrows:a.ncols ~ncols:a.nrows rows cols vals

let is_symmetric ?(tol = 0.) a =
  if a.nrows <> a.ncols then false
  else begin
    let at = transpose a in
    if a.row_ptr <> at.row_ptr || a.col_idx <> at.col_idx then false
    else begin
      let ok = ref true in
      Array.iteri
        (fun k v -> if Float.abs (v -. at.values.(k)) > tol then ok := false)
        a.values;
      !ok
    end
  end

let symmetrize_pattern a =
  if a.nrows <> a.ncols then invalid_arg "Csr.symmetrize_pattern: not square";
  let n = a.nrows in
  let t = Triplet.create ~nrows:n ~ncols:n in
  for i = 0 to n - 1 do
    Triplet.add t i i 1.;
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      let j = a.col_idx.(k) in
      Triplet.add t i j 1.;
      Triplet.add t j i 1.
    done
  done;
  let b = of_triplet t in
  (* collapse summed duplicates back to pattern value 1 *)
  { b with values = Array.map (fun _ -> 1.) b.values }

let symmetrize_values a =
  if a.nrows <> a.ncols then invalid_arg "Csr.symmetrize_values: not square";
  let n = a.nrows in
  let t = Triplet.create ~nrows:n ~ncols:n in
  for i = 0 to n - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      let j = a.col_idx.(k) in
      if i <> j then begin
        Triplet.add t i j (0.5 *. a.values.(k));
        Triplet.add t j i (0.5 *. a.values.(k))
      end
    done
  done;
  let sym = of_triplet t in
  (* diagonal shift: 1 + sum of absolute off-diagonal values per row *)
  let t2 = Triplet.create ~nrows:n ~ncols:n in
  for i = 0 to n - 1 do
    let s = ref 1. in
    for k = sym.row_ptr.(i) to sym.row_ptr.(i + 1) - 1 do
      if sym.col_idx.(k) <> i then begin
        s := !s +. Float.abs sym.values.(k);
        Triplet.add t2 i sym.col_idx.(k) sym.values.(k)
      end
    done;
    Triplet.add t2 i i !s
  done;
  of_triplet t2

let lower ?(strict = false) a =
  let t = Triplet.create ~nrows:a.nrows ~ncols:a.ncols in
  for i = 0 to a.nrows - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      let j = a.col_idx.(k) in
      if j < i || ((not strict) && j = i) then Triplet.add t i j a.values.(k)
    done
  done;
  of_triplet t

let permute_sym a perm =
  if a.nrows <> a.ncols then invalid_arg "Csr.permute_sym: not square";
  let n = a.nrows in
  if Array.length perm <> n then invalid_arg "Csr.permute_sym: wrong length";
  let inv = Array.make n (-1) in
  Array.iteri
    (fun newi oldi ->
      if oldi < 0 || oldi >= n || inv.(oldi) <> -1 then
        invalid_arg "Csr.permute_sym: not a permutation";
      inv.(oldi) <- newi)
    perm;
  let t = Triplet.create ~nrows:n ~ncols:n in
  for i = 0 to n - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      Triplet.add t inv.(i) inv.(a.col_idx.(k)) a.values.(k)
    done
  done;
  of_triplet t

let mul_vec a x =
  if Array.length x <> a.ncols then invalid_arg "Csr.mul_vec: dimension mismatch";
  let y = Array.make a.nrows 0. in
  for i = 0 to a.nrows - 1 do
    let acc = ref 0. in
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      acc := !acc +. (a.values.(k) *. x.(a.col_idx.(k)))
    done;
    y.(i) <- !acc
  done;
  y

let equal_pattern a b =
  a.nrows = b.nrows && a.ncols = b.ncols && a.row_ptr = b.row_ptr
  && a.col_idx = b.col_idx
