type result = {
  x : float array;
  iterations : int;
  residual : float;
  converged : bool;
}

let dot a b =
  let acc = ref 0. in
  Array.iteri (fun i v -> acc := !acc +. (v *. b.(i))) a;
  !acc

let axpy alpha x y =
  (* y <- y + alpha x *)
  Array.iteri (fun i v -> y.(i) <- y.(i) +. (alpha *. v)) x

let norm2 v = sqrt (dot v v)

let cg ?(tol = 1e-10) ?max_iter (a : Csr.t) b =
  let n = a.Csr.nrows in
  if a.Csr.ncols <> n || Array.length b <> n then
    invalid_arg "Iterative.cg: dimension mismatch";
  let max_iter = match max_iter with Some m -> m | None -> 4 * n in
  let x = Array.make n 0. in
  let r = Array.copy b in
  let p = Array.copy b in
  let bnorm = norm2 b in
  if bnorm = 0. then { x; iterations = 0; residual = 0.; converged = true }
  else begin
    let rr = ref (dot r r) in
    let it = ref 0 in
    let stop () = sqrt !rr <= tol *. bnorm in
    while (not (stop ())) && !it < max_iter do
      let ap = Csr.mul_vec a p in
      let alpha = !rr /. dot p ap in
      axpy alpha p x;
      axpy (-.alpha) ap r;
      let rr' = dot r r in
      let beta = rr' /. !rr in
      rr := rr';
      Array.iteri (fun i v -> p.(i) <- r.(i) +. (beta *. v)) p;
      incr it
    done;
    (* report the true residual, not the recurrence *)
    let ax = Csr.mul_vec a x in
    let res = norm2 (Array.mapi (fun i v -> b.(i) -. v) ax) in
    { x; iterations = !it; residual = res; converged = stop () }
  end
