(** Coordinate (COO) sparse matrices: an append-only list of
    [(row, col, value)] entries with explicit dimensions. The exchange
    format between the Matrix Market parser, the generators and the
    compressed formats. Duplicate entries are allowed here and summed by
    {!Csr.of_triplet}. *)

type t
(** A mutable coordinate-format matrix. *)

val create : nrows:int -> ncols:int -> t
(** Empty matrix of the given dimensions.
    @raise Invalid_argument on negative dimensions. *)

val nrows : t -> int
(** Number of rows. *)

val ncols : t -> int
(** Number of columns. *)

val nnz : t -> int
(** Number of stored entries (duplicates counted). *)

val add : t -> int -> int -> float -> unit
(** [add t i j v] appends entry [(i, j, v)] (0-based).
    @raise Invalid_argument if the indices are out of bounds. *)

val iter : (int -> int -> float -> unit) -> t -> unit
(** Iterate over entries in insertion order. *)

val entries : t -> (int * int * float) array
(** Snapshot of all entries in insertion order. *)

val map_values : (float -> float) -> t -> t
(** Same pattern, values rewritten. *)

val transpose : t -> t
(** Entries with rows and columns swapped. *)
