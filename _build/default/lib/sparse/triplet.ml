module D = Tt_util.Dynarray_compat

type t = {
  nrows : int;
  ncols : int;
  rows : int D.t;
  cols : int D.t;
  values : float D.t;
}

let create ~nrows ~ncols =
  if nrows < 0 || ncols < 0 then invalid_arg "Triplet.create: negative dimension";
  { nrows; ncols; rows = D.create (); cols = D.create (); values = D.create () }

let nrows t = t.nrows
let ncols t = t.ncols
let nnz t = D.length t.rows

let add t i j v =
  if i < 0 || i >= t.nrows || j < 0 || j >= t.ncols then
    invalid_arg (Printf.sprintf "Triplet.add: entry (%d,%d) out of bounds" i j);
  D.add_last t.rows i;
  D.add_last t.cols j;
  D.add_last t.values v

let iter f t =
  for k = 0 to nnz t - 1 do
    f (D.get t.rows k) (D.get t.cols k) (D.get t.values k)
  done

let entries t = Array.init (nnz t) (fun k -> (D.get t.rows k, D.get t.cols k, D.get t.values k))

let map_values f t =
  let t' = create ~nrows:t.nrows ~ncols:t.ncols in
  iter (fun i j v -> add t' i j (f v)) t;
  t'

let transpose t =
  let t' = create ~nrows:t.ncols ~ncols:t.nrows in
  iter (fun i j v -> add t' j i v) t;
  t'
