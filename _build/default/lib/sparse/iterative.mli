(** Conjugate gradients — an {e independent} SPD solver used to
    cross-validate the multifrontal factorization (two completely
    different algorithms agreeing on the same system is a much stronger
    check than a residual alone), and to solve when even out-of-core
    factorization would not fit. *)

type result = {
  x : float array;  (** The computed solution. *)
  iterations : int;  (** Iterations performed. *)
  residual : float;  (** Final 2-norm of [b - A x]. *)
  converged : bool;  (** Whether the tolerance was reached. *)
}

val cg :
  ?tol:float -> ?max_iter:int -> Csr.t -> float array -> result
(** [cg a b] solves [A x = b] for SPD [A] from the zero initial guess.
    [tol] (default 1e-10) is relative to [‖b‖]; [max_iter] defaults to
    [4 * n].
    @raise Invalid_argument on dimension mismatch. *)
