(* All generators build a symmetric pattern with off-diagonal value -1
   (or a random negative weight) and a diagonal making the matrix strictly
   diagonally dominant, hence SPD. *)

let finalize t =
  let a = Csr.of_triplet t in
  Csr.symmetrize_values a

let grid_stencil ~k ~offsets =
  let n = k * k in
  let t = Triplet.create ~nrows:n ~ncols:n in
  let id x y = (x * k) + y in
  for x = 0 to k - 1 do
    for y = 0 to k - 1 do
      List.iter
        (fun (dx, dy) ->
          let x' = x + dx and y' = y + dy in
          if x' >= 0 && x' < k && y' >= 0 && y' < k then
            Triplet.add t (id x y) (id x' y') (-1.))
        offsets
    done
  done;
  finalize t

let grid2d k = grid_stencil ~k ~offsets:[ (1, 0); (-1, 0); (0, 1); (0, -1) ]

let grid2d_rect kx ky =
  let n = kx * ky in
  let t = Triplet.create ~nrows:n ~ncols:n in
  let id x y = (x * ky) + y in
  for x = 0 to kx - 1 do
    for y = 0 to ky - 1 do
      List.iter
        (fun (dx, dy) ->
          let x' = x + dx and y' = y + dy in
          if x' >= 0 && x' < kx && y' >= 0 && y' < ky then
            Triplet.add t (id x y) (id x' y') (-1.))
        [ (1, 0); (-1, 0); (0, 1); (0, -1) ]
    done
  done;
  finalize t

let grid2d_9pt k =
  grid_stencil ~k
    ~offsets:
      [ (1, 0); (-1, 0); (0, 1); (0, -1); (1, 1); (1, -1); (-1, 1); (-1, -1) ]

let grid3d k =
  let n = k * k * k in
  let t = Triplet.create ~nrows:n ~ncols:n in
  let id x y z = (((x * k) + y) * k) + z in
  let offsets = [ (1, 0, 0); (-1, 0, 0); (0, 1, 0); (0, -1, 0); (0, 0, 1); (0, 0, -1) ] in
  for x = 0 to k - 1 do
    for y = 0 to k - 1 do
      for z = 0 to k - 1 do
        List.iter
          (fun (dx, dy, dz) ->
            let x' = x + dx and y' = y + dy and z' = z + dz in
            if x' >= 0 && x' < k && y' >= 0 && y' < k && z' >= 0 && z' < k then
              Triplet.add t (id x y z) (id x' y' z') (-1.))
          offsets
      done
    done
  done;
  finalize t

let banded ~rng ~n ~bandwidth ~fill =
  if bandwidth < 1 then invalid_arg "Spgen.banded: bandwidth < 1";
  let t = Triplet.create ~nrows:n ~ncols:n in
  for i = 0 to n - 1 do
    (* keep the band connected so the etree is a single tree *)
    if i > 0 then Triplet.add t i (i - 1) (-1.);
    for j = max 0 (i - bandwidth) to i - 2 do
      if Tt_util.Rng.float rng 1.0 < fill then Triplet.add t i j (-1.)
    done
  done;
  finalize t

let random_sym ~rng ~n ~nnz_per_row =
  let t = Triplet.create ~nrows:n ~ncols:n in
  (* spanning path for connectivity *)
  for i = 1 to n - 1 do
    Triplet.add t i (i - 1) (-1.)
  done;
  let extra = int_of_float (nnz_per_row *. float_of_int n /. 2.) in
  for _ = 1 to extra do
    let i = Tt_util.Rng.int rng n and j = Tt_util.Rng.int rng n in
    if i <> j then Triplet.add t (max i j) (min i j) (-1.)
  done;
  finalize t

let block_arrow ~n ~blocks ~border =
  if blocks < 1 || border < 0 || border >= n then
    invalid_arg "Spgen.block_arrow: bad shape";
  let t = Triplet.create ~nrows:n ~ncols:n in
  let body = n - border in
  let block_size = max 1 (body / blocks) in
  for i = 0 to body - 1 do
    let b = min (i / block_size) (blocks - 1) in
    let lo = b * block_size in
    (* tridiagonal coupling inside each block *)
    if i > lo then Triplet.add t i (i - 1) (-1.);
    (* plus a link to the block head for a denser block pattern *)
    if i > lo then Triplet.add t i lo (-1.)
  done;
  for i = body to n - 1 do
    (* dense border rows *)
    for j = 0 to i - 1 do
      Triplet.add t i j (-1.)
    done
  done;
  finalize t

let power_law ~rng ~n ~edges_per_node =
  if edges_per_node < 1 then invalid_arg "Spgen.power_law: edges_per_node < 1";
  let t = Triplet.create ~nrows:n ~ncols:n in
  (* endpoints list for preferential attachment *)
  let endpoints = Tt_util.Dynarray_compat.create () in
  Tt_util.Dynarray_compat.add_last endpoints 0;
  for i = 1 to n - 1 do
    for _ = 1 to edges_per_node do
      let j =
        if Tt_util.Rng.float rng 1.0 < 0.2 then Tt_util.Rng.int rng i
        else
          Tt_util.Dynarray_compat.get endpoints
            (Tt_util.Rng.int rng (Tt_util.Dynarray_compat.length endpoints))
      in
      if j <> i then begin
        Triplet.add t (max i j) (min i j) (-1.);
        Tt_util.Dynarray_compat.add_last endpoints j
      end
    done;
    Tt_util.Dynarray_compat.add_last endpoints i
  done;
  finalize t

let tridiagonal n =
  let t = Triplet.create ~nrows:n ~ncols:n in
  for i = 1 to n - 1 do
    Triplet.add t i (i - 1) (-1.)
  done;
  finalize t
