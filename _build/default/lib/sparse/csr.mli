(** Compressed sparse row matrices.

    Column indices are sorted within each row and duplicate coordinate
    entries are summed on construction. For a symmetric matrix the same
    structure read column-wise is the CSC form, which is how the
    elimination-tree and symbolic-factorization code consumes it. *)

type t = private {
  nrows : int;
  ncols : int;
  row_ptr : int array;  (** Length [nrows + 1]; row [i] occupies
                            [row_ptr.(i) .. row_ptr.(i+1) - 1]. *)
  col_idx : int array;  (** Column indices, sorted within each row. *)
  values : float array;  (** Numerical values, parallel to [col_idx]. *)
}

val of_triplet : Triplet.t -> t
(** Compress a coordinate matrix; duplicates are summed, columns sorted. *)

val of_dense : float array array -> t
(** Build from a dense row-major array, dropping exact zeros. *)

val to_dense : t -> float array array
(** Expand to dense (for tests on small matrices). *)

val nnz : t -> int
(** Number of stored entries. *)

val get : t -> int -> int -> float
(** [get a i j] is the entry at [(i, j)], [0.] if not stored
    (binary search within the row). *)

val row : t -> int -> (int * float) Seq.t
(** Entries of row [i] as [(column, value)] pairs, ascending columns. *)

val transpose : t -> t
(** The transposed matrix (O(nnz)). *)

val is_symmetric : ?tol:float -> t -> bool
(** Whether the matrix equals its transpose up to [tol] (default 0:
    exact, including pattern). *)

val symmetrize_pattern : t -> t
(** The paper's preprocessing: the pattern of [|A| + |A^T| + I], with
    value [1.] on every entry. The result is square, structurally
    symmetric, with a full diagonal.
    @raise Invalid_argument if the matrix is not square. *)

val symmetrize_values : t -> t
(** [(A + A^T) / 2] plus a diagonal shift making the result strictly
    diagonally dominant (hence SPD) — used to build numeric test problems
    from arbitrary patterns. *)

val lower : ?strict:bool -> t -> t
(** The lower triangle (including the diagonal unless [strict]). *)

val permute_sym : t -> int array -> t
(** [permute_sym a perm] is [P A P^T] where [perm.(new_index) =
    old_index] — entry [(i,j)] of the result is [a(perm i, perm j)].
    @raise Invalid_argument if [perm] is not a permutation of the
    dimension. *)

val mul_vec : t -> float array -> float array
(** Matrix–vector product. *)

val equal_pattern : t -> t -> bool
(** Same dimensions and same stored pattern. *)
