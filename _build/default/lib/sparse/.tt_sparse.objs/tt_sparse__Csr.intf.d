lib/sparse/csr.mli: Seq Triplet
