lib/sparse/csr.ml: Array Float Seq Triplet
