lib/sparse/spgen.ml: Csr List Triplet Tt_util
