lib/sparse/spgen.mli: Csr Tt_util
