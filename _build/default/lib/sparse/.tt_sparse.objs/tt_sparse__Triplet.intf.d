lib/sparse/triplet.mli:
