lib/sparse/matrix_market.mli: Csr Triplet
