lib/sparse/iterative.mli: Csr
