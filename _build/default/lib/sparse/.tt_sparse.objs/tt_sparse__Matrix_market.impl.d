lib/sparse/matrix_market.ml: Array Buffer Csr List Printf String Triplet Tt_util
