lib/sparse/triplet.ml: Array Printf Tt_util
