lib/sparse/iterative.ml: Array Csr
