(** Synthetic sparse matrix generators — the stand-in for the paper's
    University of Florida collection (see DESIGN.md for the substitution
    rationale). All matrices are square, structurally symmetric and SPD
    (symmetric part plus a diagonal-dominance shift), so they can feed
    both the symbolic pipeline and the numeric multifrontal solver.

    Generators taking an {!Tt_util.Rng.t} are deterministic given the
    generator state. *)

val grid2d : int -> Csr.t
(** [grid2d k]: the 5-point Laplacian on a k×k grid (n = k²) — the
    classic PDE matrix; its nested-dissection trees are well balanced. *)

val grid2d_rect : int -> int -> Csr.t
(** [grid2d_rect kx ky]: 5-point Laplacian on a kx×ky grid — long thin
    grids give deep, narrow assembly trees. *)

val grid2d_9pt : int -> Csr.t
(** 9-point stencil on a k×k grid (denser fronts than {!grid2d}). *)

val grid3d : int -> Csr.t
(** 7-point stencil on a k×k×k grid (n = k³) — wide, shallow assembly
    trees with large fronts. *)

val banded : rng:Tt_util.Rng.t -> n:int -> bandwidth:int -> fill:float -> Csr.t
(** Random symmetric band matrix: each within-band off-diagonal is
    present with probability [fill]. Chain-like elimination trees. *)

val random_sym : rng:Tt_util.Rng.t -> n:int -> nnz_per_row:float -> Csr.t
(** Erdős–Rényi-style symmetric pattern with expected [nnz_per_row]
    off-diagonals per row — irregular trees. *)

val block_arrow : n:int -> blocks:int -> border:int -> Csr.t
(** Block-diagonal matrix with [blocks] dense-ish blocks plus a dense
    border of width [border] — produces star-like assembly trees with a
    heavy top. *)

val power_law : rng:Tt_util.Rng.t -> n:int -> edges_per_node:int -> Csr.t
(** Preferential-attachment (Barabási–Albert-like) symmetric pattern —
    very unbalanced trees with high-degree nodes. *)

val tridiagonal : int -> Csr.t
(** The 1D Laplacian (pure chain elimination tree). *)
