lib/ordering/rcm.mli: Graph_adj
