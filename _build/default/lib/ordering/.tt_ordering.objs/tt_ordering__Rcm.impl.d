lib/ordering/rcm.ml: Array Graph_adj List
