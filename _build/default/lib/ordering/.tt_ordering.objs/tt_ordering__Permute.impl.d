lib/ordering/permute.ml: Array Tt_sparse Tt_util
