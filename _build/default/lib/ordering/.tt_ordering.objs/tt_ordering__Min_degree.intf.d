lib/ordering/min_degree.mli: Graph_adj
