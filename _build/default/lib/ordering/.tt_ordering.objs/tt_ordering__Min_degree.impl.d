lib/ordering/min_degree.ml: Array Graph_adj Tt_util
