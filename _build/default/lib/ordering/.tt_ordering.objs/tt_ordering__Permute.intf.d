lib/ordering/permute.mli: Tt_sparse Tt_util
