lib/ordering/nested_dissection.mli: Graph_adj
