lib/ordering/graph_adj.mli: Tt_sparse
