lib/ordering/nested_dissection.ml: Array Graph_adj Hashtbl List Min_degree Tt_util
