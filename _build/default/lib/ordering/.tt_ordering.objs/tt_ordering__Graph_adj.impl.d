lib/ordering/graph_adj.ml: Array List Queue Seq Tt_sparse
