type t = { n : int; adj : int array array }

let of_pattern (a : Tt_sparse.Csr.t) =
  if a.Tt_sparse.Csr.nrows <> a.Tt_sparse.Csr.ncols then
    invalid_arg "Graph_adj.of_pattern: not square";
  let n = a.Tt_sparse.Csr.nrows in
  let adj =
    Array.init n (fun i ->
        let neighbors =
          Seq.filter_map
            (fun (j, _) -> if j <> i then Some j else None)
            (Tt_sparse.Csr.row a i)
        in
        Array.of_seq neighbors)
  in
  { n; adj }

let of_adjacency adj =
  let n = Array.length adj in
  let clean =
    Array.mapi
      (fun i neighbors ->
        Array.iter
          (fun v ->
            if v < 0 || v >= n then invalid_arg "Graph_adj.of_adjacency: out of range")
          neighbors;
        let l = List.filter (fun v -> v <> i) (Array.to_list neighbors) in
        let l = List.sort_uniq compare l in
        Array.of_list l)
      adj
  in
  { n; adj = clean }

let degree g i = Array.length g.adj.(i)

let bfs_levels g s =
  let level = Array.make g.n (-1) in
  let queue = Queue.create () in
  level.(s) <- 0;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if level.(v) < 0 then begin
          level.(v) <- level.(u) + 1;
          Queue.add v queue
        end)
      g.adj.(u)
  done;
  level

let components g =
  let comp = Array.make g.n (-1) in
  let count = ref 0 in
  for s = 0 to g.n - 1 do
    if comp.(s) < 0 then begin
      let c = !count in
      incr count;
      let queue = Queue.create () in
      comp.(s) <- c;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Array.iter
          (fun v ->
            if comp.(v) < 0 then begin
              comp.(v) <- c;
              Queue.add v queue
            end)
          g.adj.(u)
      done
    end
  done;
  (comp, !count)

let pseudo_peripheral g seed =
  let rec improve current ecc rounds =
    if rounds = 0 then current
    else begin
      let level = bfs_levels g current in
      (* farthest vertex of minimal degree in the last level *)
      let far = ref current and far_l = ref (-1) in
      Array.iteri
        (fun v l ->
          if
            l > !far_l
            || (l = !far_l && l >= 0 && degree g v < degree g !far)
          then begin
            far := v;
            far_l := l
          end)
        level;
      if !far_l > ecc then improve !far !far_l (rounds - 1) else current
    end
  in
  improve seed (-1) 8
