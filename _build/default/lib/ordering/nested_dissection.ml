module D = Tt_util.Dynarray_compat

(* Subgraph induced by [vertices] of [g], with the mapping back to the
   original ids. *)
let induced (g : Graph_adj.t) vertices =
  let map_back = Array.of_list vertices in
  let n' = Array.length map_back in
  let local = Hashtbl.create (2 * n') in
  Array.iteri (fun li v -> Hashtbl.replace local v li) map_back;
  let parent = g.Graph_adj.adj in
  let adj =
    Array.map
      (fun v ->
        let ns = D.create () in
        Array.iter
          (fun u ->
            match Hashtbl.find_opt local u with
            | Some lu -> D.add_last ns lu
            | None -> ())
          parent.(v);
        D.to_array ns)
      map_back
  in
  (Graph_adj.of_adjacency adj, map_back)

let order ?(small = 24) (g : Graph_adj.t) =
  let out = D.create () in
  let rec dissect (sub : Graph_adj.t) (map_back : int array) =
    let n = sub.Graph_adj.n in
    if n = 0 then ()
    else if n <= small then
      Array.iter (fun li -> D.add_last out map_back.(li)) (Min_degree.order sub)
    else begin
      (* split the first component; other components are dissected
         independently *)
      let comp, count = Graph_adj.components sub in
      if count > 1 then begin
        for c = 0 to count - 1 do
          let part = ref [] in
          for v = n - 1 downto 0 do
            if comp.(v) = c then part := v :: !part
          done;
          let subsub, mb = induced sub !part in
          let mb = Array.map (fun v -> map_back.(v)) mb in
          dissect subsub mb
        done
      end
      else begin
        let start = Graph_adj.pseudo_peripheral sub 0 in
        let level = Graph_adj.bfs_levels sub start in
        let max_level = Array.fold_left max 0 level in
        if max_level < 2 then
          (* too shallow to split: fall back to minimum degree *)
          Array.iter (fun li -> D.add_last out map_back.(li)) (Min_degree.order sub)
        else begin
          let mid = max_level / 2 in
          let below = ref [] and above = ref [] and sep = ref [] in
          for v = n - 1 downto 0 do
            if level.(v) < mid then below := v :: !below
            else if level.(v) > mid then above := v :: !above
            else sep := v :: !sep
          done;
          let sub_b, mb_b = induced sub !below in
          let sub_a, mb_a = induced sub !above in
          dissect sub_b (Array.map (fun v -> map_back.(v)) mb_b);
          dissect sub_a (Array.map (fun v -> map_back.(v)) mb_a);
          List.iter (fun v -> D.add_last out map_back.(v)) !sep
        end
      end
    end
  in
  dissect g (Array.init g.Graph_adj.n (fun i -> i));
  D.to_array out
