(** Nested dissection by recursive level-set bisection — the stand-in for
    the paper's MeTiS.

    Each (sub)graph is split by a BFS from a pseudo-peripheral vertex:
    the median BFS level becomes the separator, the two sides are ordered
    recursively, and the separator is numbered last. Small parts fall
    back to minimum degree. Produces the balanced, bushy elimination
    trees characteristic of graph-partitioning orderings. *)

val order : ?small:int -> Graph_adj.t -> int array
(** [order g] is the elimination permutation,
    [perm.(new_index) = old_index]. Parts of at most [small] vertices
    (default 24) are ordered with {!Min_degree} restricted to the part. *)
