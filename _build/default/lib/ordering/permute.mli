(** Permutation helpers shared by the ordering pipeline. *)

val identity : int -> int array
(** The identity permutation of the given size. *)

val inverse : int array -> int array
(** [inverse perm] with [perm.(new_index) = old_index] gives
    [inv.(old_index) = new_index].
    @raise Invalid_argument if the input is not a permutation. *)

val is_permutation : int array -> bool
(** Whether the array is a permutation of [0 .. length-1]. *)

val random : rng:Tt_util.Rng.t -> int -> int array
(** A uniformly random permutation. *)

val apply : Tt_sparse.Csr.t -> int array -> Tt_sparse.Csr.t
(** Alias for {!Tt_sparse.Csr.permute_sym}: the matrix reordered so that
    new index [k] is old index [perm.(k)]. *)
