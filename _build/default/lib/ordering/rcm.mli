(** Reverse Cuthill–McKee ordering: per connected component, a BFS from a
    pseudo-peripheral vertex visiting neighbors by increasing degree,
    reversed at the end. Produces small-bandwidth profiles and chain-like
    elimination trees — the "banded" end of the ordering spectrum used in
    the experiment corpus. *)

val order : Graph_adj.t -> int array
(** [order g] is a permutation with [perm.(new_index) = old_index]
    (the convention of {!Tt_sparse.Csr.permute_sym}). *)
