let order (g : Graph_adj.t) =
  let n = g.Graph_adj.n in
  let visited = Array.make n false in
  let out = Array.make n (-1) in
  let pos = ref 0 in
  let push v =
    visited.(v) <- true;
    out.(!pos) <- v;
    incr pos
  in
  for seed = 0 to n - 1 do
    if not visited.(seed) then begin
      let start = Graph_adj.pseudo_peripheral g seed in
      let start = if visited.(start) then seed else start in
      let head = ref !pos in
      push start;
      (* classic CM: process the queue in order, appending unvisited
         neighbors by increasing degree *)
      while !head < !pos do
        let u = out.(!head) in
        incr head;
        let neigh =
          Array.of_list
            (List.filter (fun v -> not visited.(v)) (Array.to_list g.Graph_adj.adj.(u)))
        in
        Array.sort
          (fun a b -> compare (Graph_adj.degree g a) (Graph_adj.degree g b))
          neigh;
        Array.iter push neigh
      done
    end
  done;
  (* reverse for RCM *)
  let rev = Array.make n (-1) in
  for i = 0 to n - 1 do
    rev.(i) <- out.(n - 1 - i)
  done;
  rev
