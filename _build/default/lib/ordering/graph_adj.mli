(** Undirected adjacency view of a structurally symmetric sparse pattern
    (diagonal dropped). The shared substrate of every ordering. *)

type t = private {
  n : int;  (** Number of vertices. *)
  adj : int array array;  (** Sorted neighbor lists, no self-loops. *)
}

val of_pattern : Tt_sparse.Csr.t -> t
(** Build from a structurally symmetric matrix (the caller is expected to
    have applied {!Tt_sparse.Csr.symmetrize_pattern}).
    @raise Invalid_argument if the matrix is not square. *)

val of_adjacency : int array array -> t
(** Build directly from neighbor lists (used for induced subgraphs).
    Lists are sorted and deduplicated; self-loops are dropped.
    @raise Invalid_argument if an index is out of range. *)

val degree : t -> int -> int
(** Number of neighbors. *)

val bfs_levels : t -> int -> int array
(** [bfs_levels g s] assigns each vertex its BFS distance from [s]
    ([-1] for unreachable vertices). *)

val components : t -> int array * int
(** [(comp, count)]: component id of every vertex and the number of
    connected components. *)

val pseudo_peripheral : t -> int -> int
(** A vertex approximately maximizing eccentricity in the component of
    the given seed (iterated last-level BFS, George–Liu style). *)
