module D = Tt_util.Dynarray_compat

(* Quotient-graph minimum degree. Each uneliminated variable [v] keeps
   - [avars.(v)]: adjacent uneliminated variables (original edges still
     alive), and
   - [aelts.(v)]: adjacent elements (eliminated pivots whose clique
     contains [v]).
   Each element [e] keeps its boundary list [boundary.(e)]. A timestamped
   mark array makes unions O(size of the lists). *)

let order (g : Graph_adj.t) =
  let n = g.Graph_adj.n in
  let avars = Array.map (fun a -> D.of_array a) g.Graph_adj.adj in
  let aelts : int D.t array = Array.init n (fun _ -> D.create ()) in
  let boundary : int array array = Array.make n [||] in
  let eliminated = Array.make n false in
  let mark = Array.make n 0 in
  let stamp = ref 0 in
  let next_stamp () =
    incr stamp;
    !stamp
  in
  (* exact external degree of v *)
  let compute_degree v =
    let s = next_stamp () in
    mark.(v) <- s;
    let count = ref 0 in
    let visit u =
      if (not eliminated.(u)) && mark.(u) <> s then begin
        mark.(u) <- s;
        incr count
      end
    in
    D.iter (fun u -> if not eliminated.(u) then visit u) avars.(v);
    D.iter (fun e -> Array.iter visit boundary.(e)) aelts.(v);
    !count
  in
  let heap = Tt_util.Int_heap.create n in
  for v = 0 to n - 1 do
    Tt_util.Int_heap.insert heap v (compute_degree v)
  done;
  let perm = Array.make n (-1) in
  for step = 0 to n - 1 do
    let p, _deg = Tt_util.Int_heap.pop_min heap in
    perm.(step) <- p;
    eliminated.(p) <- true;
    (* boundary of the new element: live variable neighbors plus the
       boundaries of adjacent (now absorbed) elements *)
    let s = next_stamp () in
    mark.(p) <- s;
    let bnd = D.create () in
    let visit u =
      if (not eliminated.(u)) && mark.(u) <> s then begin
        mark.(u) <- s;
        D.add_last bnd u
      end
    in
    D.iter (fun u -> if not eliminated.(u) then visit u) avars.(p);
    let absorbed = D.to_array aelts.(p) in
    Array.iter (fun e -> Array.iter visit boundary.(e)) absorbed;
    let bnd = D.to_array bnd in
    boundary.(p) <- bnd;
    (* release the absorbed elements *)
    Array.iter (fun e -> boundary.(e) <- [||]) absorbed;
    avars.(p) <- D.create ();
    aelts.(p) <- D.create ();
    (* update each boundary variable: drop dead variable neighbors and
       absorbed elements, gain element p, refresh its degree *)
    let absorbed_set = next_stamp () in
    Array.iter (fun e -> mark.(e) <- absorbed_set) absorbed;
    Array.iter
      (fun v ->
        (* avars v: keep live neighbors outside the new clique; members of
           the clique are reachable through element p *)
        let s2 = next_stamp () in
        Array.iter (fun u -> mark.(u) <- s2) bnd;
        let keep = D.create () in
        D.iter
          (fun u -> if (not eliminated.(u)) && mark.(u) <> s2 then D.add_last keep u)
          avars.(v);
        avars.(v) <- keep;
        let kept_elts = D.create () in
        D.iter
          (fun e -> if mark.(e) <> absorbed_set && e <> p then D.add_last kept_elts e)
          aelts.(v);
        D.add_last kept_elts p;
        aelts.(v) <- kept_elts;
        Tt_util.Int_heap.update heap v (compute_degree v))
      bnd
  done;
  perm
