let identity n = Array.init n (fun i -> i)

let inverse perm =
  let n = Array.length perm in
  let inv = Array.make n (-1) in
  Array.iteri
    (fun newi oldi ->
      if oldi < 0 || oldi >= n || inv.(oldi) <> -1 then
        invalid_arg "Permute.inverse: not a permutation";
      inv.(oldi) <- newi)
    perm;
  inv

let is_permutation perm =
  try
    ignore (inverse perm);
    true
  with Invalid_argument _ -> false

let random ~rng n =
  let a = identity n in
  Tt_util.Rng.shuffle rng a;
  a

let apply a perm = Tt_sparse.Csr.permute_sym a perm
