(** Minimum-degree ordering on the quotient (elimination) graph — the
    stand-in for the paper's [amd].

    Exact external degrees are maintained: when a pivot is eliminated its
    boundary becomes a new {e element} (clique); the element lists of
    absorbed elements are merged, and the degrees of the boundary
    variables are recomputed. Supervariable detection (indistinguishable
    nodes) is deliberately omitted — it changes only the speed, not the
    quality, at the sizes used here. *)

val order : Graph_adj.t -> int array
(** [order g] is the elimination permutation,
    [perm.(new_index) = old_index]. Ties are broken by the smallest
    vertex id, so the result is deterministic. *)
