module D = Tt_util.Dynarray_compat

(* Small builder: nodes are appended with an explicit parent. *)
type builder = { parents : int D.t; fs : int D.t; ns : int D.t }

let builder () = { parents = D.create (); fs = D.create (); ns = D.create () }

let add b ~parent ~f ~n =
  D.add_last b.parents parent;
  D.add_last b.fs f;
  D.add_last b.ns n;
  D.length b.parents - 1

let build b =
  Tree.make ~parent:(D.to_array b.parents) ~f:(D.to_array b.fs) ~n:(D.to_array b.ns)

(* The harpoon branch of Figure 3(a), reconstructed from the bounds in the
   proof of Theorem 1: each branch below the root is a chain with input
   files M/b, eps, M. In the nested construction the innermost level keeps
   the M leaf and every outer level chains to the next harpoon root with
   an eps file, so that the best postorder accumulates (b-1)M/b of pending
   sibling files per level while the optimal traversal only accumulates
   (b-1)eps per level. *)
let harpoon_nested ~branches ~levels ~m ~eps =
  if branches < 1 then invalid_arg "Instances.harpoon_nested: branches < 1";
  if levels < 1 then invalid_arg "Instances.harpoon_nested: levels < 1";
  if m < branches then invalid_arg "Instances.harpoon_nested: m < branches";
  if eps < 0 then invalid_arg "Instances.harpoon_nested: eps < 0";
  let b = builder () in
  let root = add b ~parent:(-1) ~f:0 ~n:0 in
  let rec level ~parent remaining =
    for _ = 1 to branches do
      let a = add b ~parent ~f:(m / branches) ~n:0 in
      let bb = add b ~parent:a ~f:eps ~n:0 in
      if remaining = 1 then ignore (add b ~parent:bb ~f:m ~n:0)
      else begin
        let r' = add b ~parent:bb ~f:eps ~n:0 in
        level ~parent:r' (remaining - 1)
      end
    done
  in
  level ~parent:root levels;
  build b

let harpoon ~branches ~m ~eps = harpoon_nested ~branches ~levels:1 ~m ~eps

let theorem1_ratio ~branches ~levels ~m ~eps =
  let tree = harpoon_nested ~branches ~levels ~m ~eps in
  let po = Postorder_opt.best_memory tree in
  let opt = Liu_exact.min_memory tree in
  float_of_int po /. float_of_int opt

let two_partition_gadget a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Instances.two_partition_gadget: empty";
  Array.iter
    (fun x -> if x <= 0 then invalid_arg "Instances.two_partition_gadget: a_i <= 0")
    a;
  let s = Array.fold_left ( + ) 0 a in
  if s mod 2 <> 0 then invalid_arg "Instances.two_partition_gadget: odd sum";
  let b = builder () in
  let root = add b ~parent:(-1) ~f:0 ~n:0 in
  Array.iter
    (fun ai ->
      let ti = add b ~parent:root ~f:ai ~n:0 in
      ignore (add b ~parent:ti ~f:s ~n:0))
    a;
  let tbig = add b ~parent:root ~f:s ~n:0 in
  ignore (add b ~parent:tbig ~f:(s / 2) ~n:0);
  (build b, 2 * s, s / 2)

let chain ~length ~f ~n =
  if length < 1 then invalid_arg "Instances.chain: length < 1";
  let parent = Array.init length (fun i -> i - 1) in
  Tree.make ~parent ~f:(Array.make length f) ~n:(Array.make length n)

let star ~branches ~f_root ~f_leaf ~n =
  let p = branches + 1 in
  let parent = Array.init p (fun i -> if i = 0 then -1 else 0) in
  let f = Array.init p (fun i -> if i = 0 then f_root else f_leaf) in
  Tree.make ~parent ~f ~n:(Array.make p n)

let caterpillar ~length ~leaves_per_node ~f ~n =
  if length < 1 then invalid_arg "Instances.caterpillar: length < 1";
  let b = builder () in
  let rec spine ~parent remaining =
    if remaining > 0 then begin
      let s = add b ~parent ~f ~n in
      for _ = 1 to leaves_per_node do
        ignore (add b ~parent:s ~f ~n)
      done;
      spine ~parent:s (remaining - 1)
    end
  in
  spine ~parent:(-1) length;
  build b

let complete_binary ~levels ~f ~n =
  if levels < 1 then invalid_arg "Instances.complete_binary: levels < 1";
  let p = (1 lsl levels) - 1 in
  let parent = Array.init p (fun i -> if i = 0 then -1 else (i - 1) / 2) in
  Tree.make ~parent ~f:(Array.make p f) ~n:(Array.make p n)
