let bottom_up_order t =
  let d = Tree.depth t in
  let order = Array.init (Tree.size t) (fun i -> i) in
  Array.sort (fun a b -> compare d.(b) d.(a)) order;
  order

(* Compute the canonical profile of every subtree, bottom-up. When
   [release] is set, children profiles are dropped as soon as their parent
   is combined, keeping live memory proportional to the tree's width. *)
let compute ~release t =
  let p = Tree.size t in
  let prof : Segments.t array = Array.make p [] in
  Array.iter
    (fun i ->
      let children_profiles =
        Array.to_list (Array.map (fun c -> prof.(c)) t.Tree.children.(i))
      in
      let merged = Segments.merge children_profiles in
      (* executing i (in-tree direction): all children files are live, the
         execution and output files are allocated, then the children files
         are freed, leaving f i *)
      prof.(i) <-
        Segments.append_parent merged ~hill:(Tree.mem_req t i) ~valley:t.Tree.f.(i)
          ~node:i;
      if release then Array.iter (fun c -> prof.(c) <- []) t.Tree.children.(i))
    (bottom_up_order t);
  prof

let profiles t = compute ~release:false t

let run t =
  let prof = compute ~release:true t in
  let root_profile = prof.(t.Tree.root) in
  let in_tree_order = Segments.nodes root_profile in
  let order = Array.of_list (List.rev in_tree_order) in
  (Segments.peak root_profile, order)

let min_memory t = fst (run t)
