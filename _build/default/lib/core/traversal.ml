type check_result =
  | Feasible of int
  | Infeasible_at of { step : int; needed : int; available : int }
  | Invalid_order of { step : int; node : int; reason : string }

(* Shared simulation: runs the traversal and calls [on_step step node usage];
   returns an error constructor result via [Invalid_order] when the order is
   broken. The "usage" reported for a step is the total memory in use while
   that node executes. *)
let simulate t order on_step =
  let p = Tree.size t in
  if Array.length order <> p then
    Invalid_order { step = -1; node = -1; reason = "wrong length" }
  else begin
    let ready = Array.make p false in
    let executed = Array.make p false in
    ready.(t.Tree.root) <- true;
    (* ready_f = sum of f over ready nodes *)
    let ready_f = ref t.Tree.f.(t.Tree.root) in
    let result = ref None in
    let step = ref 0 in
    while !result = None && !step < p do
      let k = !step in
      let i = order.(k) in
      if i < 0 || i >= p then
        result := Some (Invalid_order { step = k; node = i; reason = "node out of range" })
      else if executed.(i) then
        result := Some (Invalid_order { step = k; node = i; reason = "duplicate node" })
      else if not ready.(i) then
        result :=
          Some (Invalid_order { step = k; node = i; reason = "parent not yet executed" })
      else begin
        let out = Tree.sum_children_f t i in
        let usage = !ready_f + t.Tree.n.(i) + out in
        (match on_step k i usage with
        | Some err -> result := Some err
        | None ->
            executed.(i) <- true;
            ready.(i) <- false;
            ready_f := !ready_f - t.Tree.f.(i) + out;
            Array.iter (fun j -> ready.(j) <- true) t.Tree.children.(i);
            incr step)
      end
    done;
    match !result with Some r -> r | None -> Feasible 0
  end

let check t ~memory order =
  let peak = ref min_int in
  let r =
    simulate t order (fun step _i usage ->
        if usage > memory then
          Some (Infeasible_at { step; needed = usage; available = memory })
        else begin
          if usage > !peak then peak := usage;
          None
        end)
  in
  match r with Feasible _ -> Feasible !peak | other -> other

let is_valid_order t order =
  match simulate t order (fun _ _ _ -> None) with Feasible _ -> true | _ -> false

let peak t order =
  let peak = ref min_int in
  match
    simulate t order (fun _ _ usage ->
        if usage > !peak then peak := usage;
        None)
  with
  | Feasible _ -> !peak
  | Infeasible_at _ -> assert false
  | Invalid_order { reason; _ } -> invalid_arg ("Traversal.peak: " ^ reason)

let profile t order =
  let prof = Array.make (Tree.size t) 0 in
  match
    simulate t order (fun step _ usage ->
        prof.(step) <- usage;
        None)
  with
  | Feasible _ -> prof
  | Infeasible_at _ -> assert false
  | Invalid_order { reason; _ } -> invalid_arg ("Traversal.profile: " ^ reason)

let top_down_order t =
  let p = Tree.size t in
  let order = Array.make p (-1) in
  let queue = Queue.create () in
  Queue.add t.Tree.root queue;
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order.(!k) <- i;
    incr k;
    Array.iter (fun j -> Queue.add j queue) t.Tree.children.(i)
  done;
  order

let all_orders t =
  let p = Tree.size t in
  if p > 10 then invalid_arg "Traversal.all_orders: tree too large";
  let acc = ref [] in
  let order = Array.make p (-1) in
  let rec go step ready =
    if step = p then acc := Array.copy order :: !acc
    else
      List.iter
        (fun i ->
          order.(step) <- i;
          let ready' =
            List.filter (fun j -> j <> i) ready
            @ Array.to_list t.Tree.children.(i)
          in
          go (step + 1) ready')
        ready
  in
  go 0 [ t.Tree.root ];
  !acc

let random_order ~rng t =
  let p = Tree.size t in
  let order = Array.make p (-1) in
  let ready = Tt_util.Dynarray_compat.create () in
  Tt_util.Dynarray_compat.add_last ready t.Tree.root;
  for step = 0 to p - 1 do
    let pos = Tt_util.Rng.int rng (Tt_util.Dynarray_compat.length ready) in
    let i = Tt_util.Dynarray_compat.get ready pos in
    (* swap-remove *)
    Tt_util.Dynarray_compat.set ready pos (Tt_util.Dynarray_compat.last ready);
    ignore (Tt_util.Dynarray_compat.pop_last ready);
    order.(step) <- i;
    Array.iter (Tt_util.Dynarray_compat.add_last ready) t.Tree.children.(i)
  done;
  order
