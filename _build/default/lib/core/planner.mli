(** The one-call planning API a solver would embed.

    Given a tree workflow and a main-memory budget, decide how to run it:

    - if the budget covers the optimal in-core peak ({!Minmem}), return
      an optimal in-core traversal — no I/O;
    - otherwise, if the budget covers the largest single working set,
      search traversal sources and eviction heuristics
      ({!Minio_search}) and return the cheapest out-of-core schedule
      found;
    - otherwise the instance is infeasible and the working-set floor is
      reported.

    Everything returned is validated against the paper's Algorithm 1/2
    checkers before being handed out. *)

type t =
  | In_core of { order : int array; peak : int }
      (** An optimal traversal fitting the budget ([peak <= memory]). *)
  | Out_of_core of {
      schedule : Io_schedule.t;  (** Traversal + eviction schedule. *)
      io : int;  (** Write volume of the schedule. *)
      source : string;  (** Traversal family that won the search. *)
      lower_bound : float;
          (** Divisible-relaxation lower bound for the winning traversal
              — [io / lower_bound] bounds the plan's suboptimality for
              that traversal. *)
    }
  | Infeasible of { floor : int }
      (** No schedule exists below the largest working set [floor]. *)

val plan :
  ?policy:Minio.policy -> ?attempts:int -> ?seed:int -> Tree.t -> memory:int -> t
(** Plan an execution within [memory] words. [policy] defaults to
    {!Minio.First_fit}, [attempts] to 8 candidate traversals per random
    family, [seed] to 0 (the search is deterministic given the seed). *)

val describe : t -> string
(** One-line human-readable summary. *)
