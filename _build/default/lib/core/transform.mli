(** Model variants and reductions — §III-C of the paper.

    Three constructions: the in-tree/out-tree duality (reversing a valid
    bottom-up traversal yields a valid top-down traversal of the same tree
    with the same peak, and conversely), the simulation of the pebble game
    {e with replacement} (Figure 1), and the simulation of Liu's two-node
    model of sparse LU factorization (Figure 2). Each reduction comes with
    a direct simulator of the source model so that the equivalences are
    machine-checked in the tests rather than taken on faith. *)

val reverse_traversal : int array -> int array
(** The paper's [σ~(i) = p - σ(i) + 1]: the order array reversed. An
    involution mapping valid in-tree traversals to valid out-tree
    traversals of the same tree and back. *)

val is_valid_in_tree_order : Tree.t -> int array -> bool
(** Whether the array is a permutation executing every node after all its
    children (the bottom-up, multifrontal direction). *)

val in_tree_peak : Tree.t -> int array -> int
(** Peak memory of a valid bottom-up traversal under in-tree semantics:
    executing [i] holds the output files of all completed-but-unconsumed
    subtrees plus [n i] and the output [f i] being produced. Theorem
    (§III-C): equals [Traversal.peak] of the reversed order.
    @raise Invalid_argument if the order is not a valid in-tree
    traversal. *)

val min_memory_in_tree : Tree.t -> int * int array
(** Optimal memory together with an optimal {e bottom-up} traversal
    (the multifrontal direction) — {!Liu_exact.run} reversed. *)

val of_replacement_model : parent:int array -> f:int array -> Tree.t
(** Figure 1: embed a pebble-game-with-replacement instance (processing
    node [i] needs [max (f i) (sum of children f)] in place) into the
    current model by giving node [i] the execution file
    [n i = - min (f i) (sum of children f)]. Peaks of every traversal are
    preserved exactly (see {!replacement_peak}). *)

val replacement_peak : parent:int array -> f:int array -> order:int array -> int
(** Direct simulation of the replacement model: peak over steps of
    [sum of ready files other than i + max (f i) (sum of children f)].
    @raise Invalid_argument on an invalid order. *)

val of_liu_model :
  parent:int array -> n_plus:int array -> n_minus:int array -> Tree.t
(** Figure 2: embed Liu's two-node-per-column model ([n x+] = memory peak
    while processing column [x], [n x-] = storage of the subtree after)
    into the current model by merging each pair back into one node with
    [f x = n x-] and
    [n x = n x+ - n x- - sum of n c- over children c].
    @raise Invalid_argument if some [n_minus] is negative. *)

val liu_model_peak :
  parent:int array -> n_plus:int array -> n_minus:int array -> order:int array -> int
(** Direct simulation of Liu's model on a bottom-up traversal: executing
    [x] costs [n x+] on top of the [n j-] of the completed subtrees
    hanging elsewhere. Equals {!in_tree_peak} of {!of_liu_model} on the
    same order.
    @raise Invalid_argument on an invalid bottom-up order. *)
