(** In-core traversals — Definitions 1 and 2 and Algorithm 1 of the paper.

    A traversal is a permutation of the nodes, represented here as an
    [int array] [order] with [order.(step) = node] (step 0 first). It is
    {e valid} when every node appears exactly once and after its parent
    (Equation (2)); it is {e feasible for memory M} when additionally the
    memory constraint (Equation (3)) holds at every step.

    The memory in use while step [k] executes node [i] is
    [sum of f_j over ready nodes j + n_i + sum of f_c over children c of i]
    where the {e ready} nodes are those produced but not yet executed
    (including [i] itself). The {e peak} of a traversal is the maximum of
    this quantity over all steps; a traversal is feasible for [M] iff its
    peak is at most [M]. *)

type check_result =
  | Feasible of int  (** Valid and within memory; carries the peak. *)
  | Infeasible_at of { step : int; needed : int; available : int }
      (** Valid ordering, but the memory constraint breaks at [step]. *)
  | Invalid_order of { step : int; node : int; reason : string }
      (** Not a permutation respecting precedence. *)

val check : Tree.t -> memory:int -> int array -> check_result
(** Algorithm 1: simulate the traversal with [memory] words of main
    memory. *)

val is_valid_order : Tree.t -> int array -> bool
(** Whether the array is a permutation of the nodes in which every node
    follows its parent (no memory constraint). *)

val peak : Tree.t -> int array -> int
(** Peak memory of a valid traversal (the minimum [M] making it feasible).
    @raise Invalid_argument if the order is not a valid traversal. *)

val profile : Tree.t -> int array -> int array
(** [profile t order] gives the memory in use at each step of a valid
    traversal ([profile.(k)] corresponds to executing [order.(k)]).
    @raise Invalid_argument if the order is invalid. *)

val top_down_order : Tree.t -> int array
(** A canonical valid traversal: breadth-first from the root. *)

val all_orders : Tree.t -> int array list
(** Every valid traversal — exponential, for oracle tests on tiny trees.
    @raise Invalid_argument if the tree has more than 10 nodes. *)

val random_order : rng:Tt_util.Rng.t -> Tree.t -> int array
(** A valid traversal sampled by repeatedly executing a uniformly random
    ready node. *)
