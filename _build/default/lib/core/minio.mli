(** Heuristics for the MinIO problem — §V-B of the paper.

    MinIO is NP-complete even when the traversal is fixed (Theorem 2), so
    the paper proposes greedy eviction policies: when the next node [j] of
    a given traversal does not fit, a volume
    [IOReq j = (MemReq j - f j) - available] (plus [f j] if [j]'s own
    input file was evicted earlier) must be freed by writing some resident
    input files to secondary memory. Candidates are the files already
    produced and not yet consumed, ordered by {e latest next use first}
    (descending execution step); each policy selects from that ordered
    set [S]:

    - {e LSNF} (Last Scheduled Node First): take files from the front of
      [S] until the freed volume suffices — optimal for the divisible
      relaxation;
    - {e First Fit}: the first file of [S] at least as large as the
      deficit (fallback LSNF);
    - {e Best Fit}: repeatedly the file with size closest to the
      remaining deficit;
    - {e First Fill}: repeatedly the first file strictly smaller than the
      remaining deficit (fallback LSNF);
    - {e Best Fill}: repeatedly the largest file strictly smaller than
      the remaining deficit (fallback LSNF);
    - {e Best-K Combination}: repeatedly the subset of the first [K]
      files of [S] whose total size is closest to the remaining deficit
      (the paper uses K = 5).

    All policies are guarded against zero-progress rounds (possible with
    zero-size files) by falling back to LSNF, so they terminate whenever
    the instance is feasible, i.e. [memory >= max_mem_req]. *)

type policy =
  | Lsnf
  | First_fit
  | Best_fit
  | First_fill
  | Best_fill
  | Best_k of int  (** [Best_k 5] in the paper's experiments. *)

val all_policies : (string * policy) list
(** The paper's six heuristics with display names, [Best_k 5] included. *)

val policy_name : policy -> string
(** Display name, e.g. ["First Fit"]. *)

val run : Tree.t -> memory:int -> order:int array -> policy -> Io_schedule.t option
(** Simulate the traversal with the given policy. Returns the full
    out-of-core schedule (feasible by construction, checkable with
    {!Io_schedule.check}), or [None] when the instance is infeasible
    ([memory < max_mem_req] along this traversal).
    @raise Invalid_argument if [order] is not a valid traversal. *)

val io_volume : Tree.t -> memory:int -> order:int array -> policy -> int option
(** I/O volume of {!run}'s schedule. *)

val divisible_lower_bound : Tree.t -> memory:int -> order:int array -> float option
(** Optimal I/O volume of the {e divisible} relaxation (fractions of
    files may be evicted) for the given traversal, computed by
    furthest-next-use (LSNF) eviction — a lower bound on every integral
    policy for the same traversal. [None] when infeasible. The paper
    lists such bounds as future work; it is used here to report
    heuristic-to-bound gaps. *)
