(** Best postorder traversal for MinMemory — Liu (1986), §IV-A of the
    paper.

    A postorder traversal (in the paper's top-down sense) executes a node
    and then processes each child subtree completely, one after the other.
    The peak of the subtree rooted at [i] for a given child order
    [c_1 .. c_m] is
    [max(MemReq i, max_k (P(c_k) + sum of f over c_j, j > k))], and the
    classical exchange argument shows the order minimizing it sorts the
    children by {e increasing} [P(c) - f(c)]. (The paper phrases the rule
    as "increasing memory requirement of the subtrees", which coincides
    when all files have equal size; the general keyed rule implemented
    here is validated against exhaustive enumeration in the tests.)

    Complexity: O(p log p). *)

val subtree_peaks : Tree.t -> int array
(** [.(i)] is the minimal postorder peak of the subtree rooted at [i]
    (counting only memory attributable to that subtree). *)

val run : Tree.t -> int * int array
(** [run t] is [(memory, order)]: the minimum memory over all postorder
    traversals and a postorder traversal achieving it. *)

val best_memory : Tree.t -> int
(** First component of {!run}. *)

val peak_with_child_order : Tree.t -> (int -> int array) -> int
(** [peak_with_child_order t order_of] is the postorder peak when the
    children of each node [i] are processed in the order given by
    [order_of i] (a permutation of [t.children.(i)]). Used by the
    child-ordering ablation bench and by the exhaustive oracle. *)

val all_postorders : Tree.t -> int array list
(** Every postorder traversal (all child permutations at every node) —
    exponential, for oracle tests on tiny trees.
    @raise Invalid_argument if the tree has more than 9 nodes. *)
