lib/core/brute_force.mli: Tree
