lib/core/liu_exact.ml: Array List Segments Tree
