lib/core/postorder_opt.mli: Tree
