lib/core/explore.ml: Array List Tree Tt_util
