lib/core/minio_search.ml: Array Io_schedule List Liu_exact Minio Minmem Postorder_opt Printf Traversal Tree Tt_util
