lib/core/brute_force.ml: Array Hashtbl List Postorder_opt Set Traversal Tree
