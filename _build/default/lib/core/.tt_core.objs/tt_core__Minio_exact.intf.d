lib/core/minio_exact.mli: Minio Tree
