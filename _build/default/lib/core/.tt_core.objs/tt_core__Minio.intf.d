lib/core/minio.mli: Io_schedule Tree
