lib/core/planner.mli: Io_schedule Minio Tree
