lib/core/segments.mli:
