lib/core/tree.mli: Format Tt_util
