lib/core/segments.ml: Array List Tt_util
