lib/core/io_schedule.ml: Array List Printf Tree
