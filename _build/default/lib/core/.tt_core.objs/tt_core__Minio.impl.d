lib/core/minio.ml: Array Io_schedule List Option Printf Traversal Tree
