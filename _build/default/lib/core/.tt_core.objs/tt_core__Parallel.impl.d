lib/core/parallel.ml: Array List Tree Tt_util
