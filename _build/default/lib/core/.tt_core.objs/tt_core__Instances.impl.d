lib/core/instances.ml: Array Liu_exact Postorder_opt Tree Tt_util
