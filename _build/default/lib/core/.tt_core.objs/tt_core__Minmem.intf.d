lib/core/minmem.mli: Tree
