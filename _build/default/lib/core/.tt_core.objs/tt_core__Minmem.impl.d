lib/core/minmem.ml: Array Explore Tree Tt_util
