lib/core/io_schedule.mli: Tree
