lib/core/explore.mli: Tree Tt_util
