lib/core/parallel.mli: Tree
