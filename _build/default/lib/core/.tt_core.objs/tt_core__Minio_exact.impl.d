lib/core/minio_exact.ml: Array Float List Minio Traversal Tree
