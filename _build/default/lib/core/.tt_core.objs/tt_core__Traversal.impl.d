lib/core/traversal.ml: Array List Queue Tree Tt_util
