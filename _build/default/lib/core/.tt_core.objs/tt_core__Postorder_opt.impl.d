lib/core/postorder_opt.ml: Array List Tree
