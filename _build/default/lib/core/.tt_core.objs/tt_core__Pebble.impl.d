lib/core/pebble.ml: Array Minmem Transform Tree
