lib/core/minio_search.mli: Io_schedule Minio Tree Tt_util
