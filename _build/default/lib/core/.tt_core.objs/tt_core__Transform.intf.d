lib/core/transform.mli: Tree
