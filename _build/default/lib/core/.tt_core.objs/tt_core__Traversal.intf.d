lib/core/traversal.mli: Tree Tt_util
