lib/core/transform.ml: Array Liu_exact Traversal Tree
