lib/core/planner.ml: Io_schedule Minio Minio_search Minmem Printf Traversal Tree Tt_util
