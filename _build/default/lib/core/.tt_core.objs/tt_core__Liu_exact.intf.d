lib/core/liu_exact.mli: Segments Tree
