lib/core/tree.ml: Array Buffer Format List Printf Queue String Tt_util
