lib/core/pebble.mli: Tree
