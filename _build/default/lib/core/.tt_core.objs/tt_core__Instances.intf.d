lib/core/instances.mli: Tree
