(* Labels are computed bottom-up over the shape; weights are ignored. *)

let bottom_up_order t =
  let d = Tree.depth t in
  let order = Array.init (Tree.size t) (fun i -> i) in
  Array.sort (fun a b -> compare d.(b) d.(a)) order;
  order

let labels_with combine t =
  let lab = Array.make (Tree.size t) 1 in
  Array.iter
    (fun i ->
      let cs = Array.map (fun c -> lab.(c)) t.Tree.children.(i) in
      if Array.length cs > 0 then begin
        Array.sort (fun a b -> compare b a) cs;
        lab.(i) <- combine cs
      end)
    (bottom_up_order t);
  lab

let sethi_ullman t =
  let combine sorted =
    let best = ref 0 in
    Array.iteri (fun k r -> best := max !best (r + k)) sorted;
    !best
  in
  (labels_with combine t).(t.Tree.root)

let strahler t =
  let combine sorted =
    if Array.length sorted = 1 then sorted.(0)
    else if sorted.(0) = sorted.(1) then sorted.(0) + 1
    else sorted.(0)
  in
  (labels_with combine t).(t.Tree.root)

let unit_replacement_tree t =
  Transform.of_replacement_model ~parent:t.Tree.parent
    ~f:(Array.make (Tree.size t) 1)

let min_registers t = Minmem.min_memory (unit_replacement_tree t)
