type node_seq = Empty | Single of int | Cat of node_seq * node_seq

let seq_empty = Empty
let seq_single i = Single i

let seq_cat a b =
  match (a, b) with Empty, x -> x | x, Empty -> x | _ -> Cat (a, b)

let seq_to_list s =
  (* explicit worklist to stay stack-safe on chain-shaped ropes *)
  let acc = ref [] in
  let work = ref [ s ] in
  (* collect in reverse by walking right-to-left *)
  while !work <> [] do
    match !work with
    | [] -> ()
    | Empty :: rest -> work := rest
    | Single i :: rest ->
        acc := i :: !acc;
        work := rest
    | Cat (a, b) :: rest -> work := b :: a :: rest
  done;
  (* we pushed b before a, so nodes were visited right-to-left and [acc]
     is already in left-to-right order *)
  !acc

type segment = { hill : int; valley : int; seq : node_seq }
type t = segment list

let cost s = s.hill - s.valley

let fuse a b =
  { hill = max a.hill b.hill; valley = b.valley; seq = seq_cat a.seq b.seq }

let canonicalize segments =
  (* Stack holds the canonical prefix in reverse order. Two fusion rules:
     (1) costs must strictly decrease — one never pauses before a segment
     at least as expensive as its predecessor; (2) valleys must strictly
     increase (suffix-minima decomposition) — pausing at a valley that a
     later segment descends below is never useful, and increasing valleys
     are exactly the property that makes the decreasing-cost merge rule
     of {!merge} optimal (see the exchange argument in the tests). *)
  let push stack s =
    let rec go stack s =
      match stack with
      | top :: rest when cost s >= cost top || top.valley >= s.valley ->
          go rest (fuse top s)
      | _ -> s :: stack
    in
    go stack s
  in
  List.rev (List.fold_left push [] segments)

let singleton ~hill ~valley ~node =
  if hill < valley then invalid_arg "Segments.singleton: hill < valley";
  [ { hill; valley; seq = seq_single node } ]

let merge profiles =
  match profiles with
  | [] -> []
  | [ p ] -> p
  | _ ->
      let arr = Array.of_list (List.map Array.of_list profiles) in
      let k = Array.length arr in
      let idx = Array.make k 0 in
      (* current retained contribution of each child (0 before its first
         segment completes) *)
      let contrib = Array.make k 0 in
      let total = ref 0 in
      (* max-heap on segment cost: Int_heap is a min-heap, so negate *)
      let heap = Tt_util.Int_heap.create k in
      for c = 0 to k - 1 do
        if Array.length arr.(c) > 0 then
          Tt_util.Int_heap.insert heap c (-cost arr.(c).(0))
      done;
      let out = ref [] in
      while not (Tt_util.Int_heap.is_empty heap) do
        let c, _ = Tt_util.Int_heap.pop_min heap in
        let s = arr.(c).(idx.(c)) in
        let base = !total - contrib.(c) in
        out := { hill = s.hill + base; valley = s.valley + base; seq = s.seq } :: !out;
        total := base + s.valley;
        contrib.(c) <- s.valley;
        idx.(c) <- idx.(c) + 1;
        if idx.(c) < Array.length arr.(c) then
          Tt_util.Int_heap.insert heap c (-cost arr.(c).(idx.(c)))
      done;
      canonicalize (List.rev !out)

let append_parent prof ~hill ~valley ~node =
  if hill < valley then invalid_arg "Segments.append_parent: hill < valley";
  canonicalize (prof @ [ { hill; valley; seq = seq_single node } ])

let peak prof = List.fold_left (fun acc s -> max acc s.hill) 0 prof

let final_valley prof =
  match List.rev prof with [] -> 0 | s :: _ -> s.valley

let nodes prof =
  List.concat_map (fun s -> seq_to_list s.seq) prof

let check_canonical prof =
  let rec go = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> cost a > cost b && a.valley < b.valley && go rest
  in
  List.for_all (fun s -> s.hill >= s.valley) prof && go prof

let of_step_profile ~usage ~after ~order =
  let segs =
    Array.to_list
      (Array.mapi
         (fun k u -> { hill = u; valley = after.(k); seq = seq_single order.(k) })
         usage)
  in
  canonicalize segs
