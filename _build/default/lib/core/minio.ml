type policy = Lsnf | First_fit | Best_fit | First_fill | Best_fill | Best_k of int

let policy_name = function
  | Lsnf -> "LSNF"
  | First_fit -> "First Fit"
  | Best_fit -> "Best Fit"
  | First_fill -> "First Fill"
  | Best_fill -> "Best Fill"
  | Best_k k -> Printf.sprintf "Best %d Comb." k

let all_policies =
  List.map
    (fun p -> (policy_name p, p))
    [ Lsnf; First_fit; Best_fit; First_fill; Best_fill; Best_k 5 ]

(* --- policy selection ---------------------------------------------------
   [select policy s deficit] returns the (indices into [s] of the) files to
   evict, where [s] lists candidate (node, size) pairs ordered latest-use
   first and sizes are positive. The returned set's total size is at least
   [deficit] whenever [s]'s total is. *)

let select policy s deficit =
  let total = Array.fold_left (fun acc (_, f) -> acc + f) 0 s in
  if total < deficit then None
  else begin
    let chosen = ref [] in
    let remaining = ref deficit in
    let available = Array.map (fun x -> (true, x)) s in
    let take i =
      let _, (_, f) = available.(i) in
      available.(i) <- (false, snd available.(i));
      chosen := i :: !chosen;
      remaining := !remaining - f
    in
    let lsnf_rest () =
      Array.iteri
        (fun i (free, (_, f)) ->
          if free && !remaining > 0 && f > 0 then take i)
        available
    in
    (match policy with
    | Lsnf -> lsnf_rest ()
    | First_fit -> begin
        (* first file at least as large as the deficit; LSNF otherwise *)
        let found = ref false in
        Array.iteri
          (fun i (free, (_, f)) -> if free && (not !found) && f >= !remaining then begin
               found := true;
               take i
             end)
          available;
        if not !found then lsnf_rest ()
      end
    | Best_fit ->
        (* repeatedly the file with size closest to the remaining deficit;
           ties broken towards the front of S (latest use) *)
        let progress = ref true in
        while !remaining > 0 && !progress do
          let best = ref (-1) in
          let best_d = ref max_int in
          Array.iteri
            (fun i (free, (_, f)) ->
              if free && f > 0 then begin
                let d = abs (!remaining - f) in
                if d < !best_d then begin
                  best_d := d;
                  best := i
                end
              end)
            available;
          if !best < 0 then progress := false else take !best
        done;
        if !remaining > 0 then lsnf_rest ()
    | First_fill ->
        (* repeatedly the first file strictly smaller than the deficit *)
        let progress = ref true in
        while !remaining > 0 && !progress do
          let found = ref (-1) in
          Array.iteri
            (fun i (free, (_, f)) ->
              if free && !found < 0 && f > 0 && f < !remaining then found := i)
            available;
          if !found < 0 then progress := false else take !found
        done;
        if !remaining > 0 then lsnf_rest ()
    | Best_fill ->
        (* repeatedly the largest file strictly smaller than the deficit *)
        let progress = ref true in
        while !remaining > 0 && !progress do
          let best = ref (-1) in
          let best_f = ref (-1) in
          Array.iteri
            (fun i (free, (_, f)) ->
              if free && f > 0 && f < !remaining && f > !best_f then begin
                best_f := f;
                best := i
              end)
            available;
          if !best < 0 then progress := false else take !best
        done;
        if !remaining > 0 then lsnf_rest ()
    | Best_k k ->
        (* repeatedly the subset of the first k free files whose total is
           closest to the deficit; ties prefer the larger total so the
           loop always progresses *)
        let progress = ref true in
        while !remaining > 0 && !progress do
          let front = ref [] in
          Array.iteri
            (fun i (free, (_, f)) ->
              if free && f > 0 && List.length !front < k then front := (i, f) :: !front)
            available;
          let front = Array.of_list (List.rev !front) in
          let m = Array.length front in
          if m = 0 then progress := false
          else begin
            let best_mask = ref 0 and best_d = ref max_int and best_sum = ref 0 in
            for mask = 1 to (1 lsl m) - 1 do
              let sum = ref 0 in
              for b = 0 to m - 1 do
                if mask land (1 lsl b) <> 0 then sum := !sum + snd front.(b)
              done;
              let d = abs (!remaining - !sum) in
              if d < !best_d || (d = !best_d && !sum > !best_sum) then begin
                best_d := d;
                best_sum := !sum;
                best_mask := mask
              end
            done;
            if !best_sum = 0 then progress := false
            else
              for b = 0 to m - 1 do
                if !best_mask land (1 lsl b) <> 0 then take (fst front.(b))
              done
          end
        done;
        if !remaining > 0 then lsnf_rest ());
    Some !chosen
  end

(* --- simulation --------------------------------------------------------- *)

let run tree ~memory ~order policy =
  let p = Tree.size tree in
  if not (Traversal.is_valid_order tree order) then
    invalid_arg "Minio.run: invalid traversal";
  let pos = Array.make p 0 in
  Array.iteri (fun step i -> pos.(i) <- step) order;
  let tau = Array.make p Io_schedule.never in
  (* resident ready files; evicted.(i) set when the file is out *)
  let resident = Array.make p false in
  let evicted = Array.make p false in
  resident.(tree.Tree.root) <- true;
  let mavail = ref (memory - tree.Tree.f.(tree.Tree.root)) in
  let feasible = ref true in
  let step = ref 0 in
  while !feasible && !step < p do
    let k = !step in
    let j = order.(k) in
    (* total free memory that executing j requires: its working set minus
       its input file if the latter is already resident *)
    let need = Tree.mem_req tree j - if evicted.(j) then 0 else tree.Tree.f.(j) in
    if need > !mavail then begin
      let deficit = need - !mavail in
      (* candidates: resident produced files other than j's input, latest
         consumption first; zero-size files are useless to evict *)
      let cand = ref [] in
      for i = 0 to p - 1 do
        if resident.(i) && i <> j && tree.Tree.f.(i) > 0 then
          cand := (i, tree.Tree.f.(i)) :: !cand
      done;
      let s =
        Array.of_list (List.sort (fun (a, _) (b, _) -> compare pos.(b) pos.(a)) !cand)
      in
      match select policy s deficit with
      | None -> feasible := false
      | Some indices ->
          List.iter
            (fun idx ->
              let i, fi = s.(idx) in
              resident.(i) <- false;
              evicted.(i) <- true;
              tau.(i) <- k;
              mavail := !mavail + fi)
            indices
    end;
    if !feasible then begin
      (* read j's input back if needed, execute, produce children files *)
      if evicted.(j) then begin
        evicted.(j) <- false;
        resident.(j) <- false;
        mavail := !mavail - tree.Tree.f.(j)
      end
      else resident.(j) <- false;
      mavail := !mavail + tree.Tree.f.(j) - Tree.sum_children_f tree j;
      Array.iter (fun c -> resident.(c) <- true) tree.Tree.children.(j);
      incr step
    end
  done;
  if !feasible then Some { Io_schedule.order; tau } else None

let io_volume tree ~memory ~order policy =
  Option.map (Io_schedule.io_volume tree) (run tree ~memory ~order policy)

let divisible_lower_bound tree ~memory ~order =
  let p = Tree.size tree in
  if not (Traversal.is_valid_order tree order) then
    invalid_arg "Minio.divisible_lower_bound: invalid traversal";
  let pos = Array.make p 0 in
  Array.iteri (fun step i -> pos.(i) <- step) order;
  (* resident fraction (in size units) of each produced, unconsumed file *)
  let resident = Array.make p 0.0 in
  resident.(tree.Tree.root) <- float_of_int tree.Tree.f.(tree.Tree.root);
  let resident_total = ref resident.(tree.Tree.root) in
  let io = ref 0.0 in
  let feasible = ref true in
  let step = ref 0 in
  while !feasible && !step < p do
    let j = order.(!step) in
    let fj = float_of_int tree.Tree.f.(j) in
    (* bring j's input fully back, then make room for the working set *)
    let bring = fj -. resident.(j) in
    resident.(j) <- fj;
    resident_total := !resident_total +. bring;
    let working =
      float_of_int (tree.Tree.n.(j) + Tree.sum_children_f tree j) +. fj
    in
    let excess = !resident_total -. fj +. working -. float_of_int memory in
    if excess > 1e-9 then begin
      (* evict [excess] units from the files used latest *)
      let cand = ref [] in
      for i = 0 to p - 1 do
        if i <> j && resident.(i) > 0.0 then cand := i :: !cand
      done;
      let cand =
        List.sort (fun a b -> compare pos.(b) pos.(a)) !cand
      in
      let remaining = ref excess in
      List.iter
        (fun i ->
          if !remaining > 1e-9 then begin
            let take = min resident.(i) !remaining in
            resident.(i) <- resident.(i) -. take;
            resident_total := !resident_total -. take;
            io := !io +. take;
            remaining := !remaining -. take
          end)
        cand;
      if !remaining > 1e-9 then feasible := false
    end;
    if !feasible then begin
      (* consume j's input, produce the children files *)
      resident_total := !resident_total -. resident.(j);
      resident.(j) <- 0.0;
      Array.iter
        (fun c ->
          resident.(c) <- float_of_int tree.Tree.f.(c);
          resident_total := !resident_total +. resident.(c))
        tree.Tree.children.(j);
      incr step
    end
  done;
  if !feasible then Some !io else None
