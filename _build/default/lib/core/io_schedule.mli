(** Out-of-core traversals — Definitions 3 and 4 and Algorithm 2.

    An out-of-core traversal is a pair [(σ, τ)]: [σ] is the execution
    order (as in {!Traversal}) and [τ] schedules writes to secondary
    memory. [tau.(i) = s] means the input file of node [i] is written out
    at the beginning of step [s] (and read back right before [i]
    executes); [tau.(i) = never] means the file stays in main memory.
    A file is written at most once and read back at most once, so the
    write volume [IO = sum of f_i over written i] measures the schedule
    (Definition 3); total traffic is twice that.

    Note: the paper's Algorithm 2 contains an obvious typo
    ([if σ(i) >= step then FAILURE] where producedness must be checked);
    this implementation enforces the mathematically stated constraints
    (4)–(7) of Definition 3: a file can be written only after its parent
    executed, only before its owner executes, and never for the root. *)

type t = {
  order : int array;  (** Execution order, [order.(step) = node]. *)
  tau : int array;
      (** [tau.(i)] is the write step of node [i]'s input file, or
          {!never}. *)
}
(** An out-of-core schedule. *)

val never : int
(** Sentinel ([-1]) for "file never written to secondary memory". *)

val in_core : int array -> t
(** Schedule that performs no I/O. *)

val io_volume : Tree.t -> t -> int
(** Write volume of the schedule: sum of [f_i] over written files (does
    not check feasibility). *)

type check_result =
  | Feasible of { io : int; peak : int }
      (** Valid schedule; carries the I/O volume and the main-memory
          peak. *)
  | Infeasible_at of { step : int; needed : int; available : int }
      (** Memory constraint (7) breaks at [step]. *)
  | Invalid of { step : int; node : int; reason : string }
      (** Ordering or write-schedule constraint (4)–(6) broken. *)

val check : Tree.t -> memory:int -> t -> check_result
(** Algorithm 2: simulate the schedule with [memory] words of main
    memory. *)

val validate_io : Tree.t -> memory:int -> t -> int
(** [validate_io t ~memory s] is the I/O volume of a feasible schedule.
    @raise Invalid_argument if the schedule is invalid or infeasible. *)
