let reverse_traversal order =
  let p = Array.length order in
  Array.init p (fun k -> order.(p - 1 - k))

let is_valid_in_tree_order t order =
  Traversal.is_valid_order t (reverse_traversal order)

(* Shared bottom-up simulation: [usage i pending_sum] gives the memory
   while executing [i] when the completed-but-unconsumed subtrees other
   than i's children hold [pending_sum]. *)
let in_tree_simulate t order usage =
  let p = Tree.size t in
  if Array.length order <> p then invalid_arg "Transform: wrong order length";
  let done_ = Array.make p false in
  (* pending = sum of contribution of completed subtrees whose parent has
     not yet executed *)
  let pending = ref 0 in
  let peak = ref min_int in
  Array.iter
    (fun i ->
      if i < 0 || i >= p || done_.(i) then invalid_arg "Transform: invalid order";
      Array.iter
        (fun c -> if not done_.(c) then invalid_arg "Transform: child after parent")
        t.Tree.children.(i);
      let children_contribution =
        Array.fold_left (fun acc c -> acc + t.Tree.f.(c)) 0 t.Tree.children.(i)
      in
      let u = usage i (!pending - children_contribution) in
      if u > !peak then peak := u;
      done_.(i) <- true;
      pending := !pending - children_contribution + t.Tree.f.(i))
    order;
  !peak

let in_tree_peak t order =
  in_tree_simulate t order (fun i other -> other + Tree.mem_req t i)

let min_memory_in_tree t =
  let mem, order = Liu_exact.run t in
  (mem, reverse_traversal order)

let of_replacement_model ~parent ~f =
  let skeleton = Tree.make ~parent ~f ~n:(Array.make (Array.length parent) 0) in
  let n =
    Array.init (Array.length parent) (fun i ->
        -min f.(i) (Tree.sum_children_f skeleton i))
  in
  Tree.make ~parent ~f ~n

let replacement_peak ~parent ~f ~order =
  let t = Tree.make ~parent ~f ~n:(Array.make (Array.length parent) 0) in
  let p = Tree.size t in
  if not (Traversal.is_valid_order t order) then
    invalid_arg "Transform.replacement_peak: invalid order";
  (* top-down simulation with in-place replacement semantics *)
  let ready = Array.make p false in
  ready.(t.Tree.root) <- true;
  let ready_f = ref f.(t.Tree.root) in
  let peak = ref min_int in
  Array.iter
    (fun i ->
      let out = Tree.sum_children_f t i in
      let u = !ready_f - f.(i) + max f.(i) out in
      if u > !peak then peak := u;
      ready.(i) <- false;
      ready_f := !ready_f - f.(i) + out;
      Array.iter (fun c -> ready.(c) <- true) t.Tree.children.(i))
    order;
  !peak

let of_liu_model ~parent ~n_plus ~n_minus =
  Array.iter
    (fun x -> if x < 0 then invalid_arg "Transform.of_liu_model: negative n_minus")
    n_minus;
  let skeleton =
    Tree.make ~parent ~f:n_minus ~n:(Array.make (Array.length parent) 0)
  in
  let n =
    Array.init (Array.length parent) (fun i ->
        n_plus.(i) - n_minus.(i) - Tree.sum_children_f skeleton i)
  in
  Tree.make ~parent ~f:n_minus ~n

let liu_model_peak ~parent ~n_plus ~n_minus ~order =
  let t = of_liu_model ~parent ~n_plus ~n_minus in
  in_tree_simulate t order (fun i other -> other + n_plus.(i))
