type t =
  | In_core of { order : int array; peak : int }
  | Out_of_core of {
      schedule : Io_schedule.t;
      io : int;
      source : string;
      lower_bound : float;
    }
  | Infeasible of { floor : int }

let plan ?(policy = Minio.First_fit) ?(attempts = 8) ?(seed = 0) tree ~memory =
  let floor = Tree.max_mem_req tree in
  if memory < floor then Infeasible { floor }
  else begin
    let peak, order = Minmem.run tree in
    if peak <= memory then begin
      (match Traversal.check tree ~memory order with
      | Traversal.Feasible _ -> ()
      | _ -> invalid_arg "Planner.plan: internal validation failure");
      In_core { order; peak }
    end
    else begin
      let rng = Tt_util.Rng.create seed in
      match Minio_search.run ~policy ~attempts ~rng tree ~memory with
      | None -> Infeasible { floor }
      | Some best ->
          (match Io_schedule.check tree ~memory best.Minio_search.schedule with
          | Io_schedule.Feasible _ -> ()
          | _ -> invalid_arg "Planner.plan: internal validation failure");
          let lower_bound =
            match
              Minio.divisible_lower_bound tree ~memory ~order:best.Minio_search.order
            with
            | Some lb -> lb
            | None -> 0.
          in
          Out_of_core
            { schedule = best.Minio_search.schedule;
              io = best.Minio_search.io;
              source = best.Minio_search.source;
              lower_bound
            }
    end
  end

let describe = function
  | In_core { peak; _ } ->
      Printf.sprintf "in-core: optimal traversal, peak %d words, no I/O" peak
  | Out_of_core { io; source; lower_bound; _ } ->
      Printf.sprintf
        "out-of-core: %d words of I/O (traversal source: %s; divisible bound %.1f)" io
        source lower_bound
  | Infeasible { floor } ->
      Printf.sprintf "infeasible: the largest working set needs %d words" floor
