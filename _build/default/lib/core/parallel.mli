(** Memory-constrained parallel tree traversal — the direction the
    paper's conclusion sketches ("multicore platforms … call for
    memory-aware computational kernels at every level"), built on the
    same Equation (1) model.

    Tasks now carry a duration; [procs] workers execute ready tasks
    concurrently under a shared memory budget. While task [i] runs it
    holds its whole working set [MemReq i]; a produced-but-unstarted file
    holds [f i], exactly as in the sequential model — a parallel schedule
    with one processor and the sequential peak of memory degenerates to a
    traversal.

    {!list_schedule} is a greedy event-driven list scheduler: at every
    completion time it starts ready tasks in priority order (longest
    critical path first by default) as long as a processor and the memory
    both allow. The result is validated step by step; the bench's
    [parallel] section sweeps processors × memory over the corpus and
    shows the memory-bound speedup saturation. *)

type event = {
  node : int;  (** The task. *)
  proc : int;  (** Worker index in [0, procs). *)
  start : int;  (** Start time. *)
  finish : int;  (** Completion time ([start + work node]). *)
}

type schedule = {
  events : event array;  (** One event per task, in start order. *)
  makespan : int;  (** Completion time of the last task. *)
  peak_memory : int;  (** Maximum memory in use at any instant. *)
}

val list_schedule :
  ?priority:(int -> int) ->
  Tree.t ->
  procs:int ->
  memory:int ->
  work:(int -> int) ->
  schedule option
(** Greedy schedule of the out-tree with [procs] workers within [memory]
    words. [work i >= 1] is task [i]'s duration; [priority] defaults to
    the critical-path (bottom) level (higher runs first). [None] when the
    greedy scheduler deadlocks: a greedy prefix can strand too many open
    files, just as greedy sequential traversals can — that is the
    MinMemory phenomenon. Completion is guaranteed when
    [memory >= Tree.total_f tree + slack for the running extras], and in
    practice whenever [memory] is at least the sequential optimum; the
    bench sweeps budgets relative to {!Minmem.min_memory}.
    @raise Invalid_argument if [procs < 1] or some [work i < 1]. *)

val critical_path : Tree.t -> work:(int -> int) -> int
(** Length of the heaviest root-to-leaf chain — a makespan lower bound
    with unlimited processors and memory. *)

val sequential_makespan : Tree.t -> work:(int -> int) -> int
(** Sum of all durations — the single-processor makespan. *)

val validate : Tree.t -> memory:int -> work:(int -> int) -> schedule -> bool
(** Independent re-check of a schedule: precedence (a task starts after
    its parent finishes), processor exclusivity, and the memory bound at
    every time instant. Used by the tests. *)
