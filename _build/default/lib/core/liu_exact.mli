(** Liu's exact MinMemory algorithm (Liu 1987), via hill–valley segments.

    Works bottom-up on the in-tree reading of the workflow (leaves first,
    root last — the natural direction for multifrontal assembly trees):
    each subtree gets a canonical profile, children profiles are merged in
    non-increasing segment-cost order, and the node's own execution is
    appended. §III-C of the paper shows the resulting optimal in-tree
    traversal, reversed, is an optimal out-tree traversal with the same
    peak, which is what {!run} returns.

    Worst-case complexity O(p²); typically O(p log p)-ish because
    canonical profiles stay short. *)

val run : Tree.t -> int * int array
(** [run t] is [(memory, order)]: the optimal memory over {e all}
    traversals and an (out-tree, top-down) traversal achieving it. *)

val min_memory : Tree.t -> int
(** First component of {!run}. *)

val profiles : Tree.t -> Segments.t array
(** Canonical optimal profile of every subtree (in-tree direction),
    exposed for tests and for the MinIO analysis. [.(i)] starts at 0 and
    ends at [f i]. *)
