type t = { order : int array; tau : int array }

let never = -1

let in_core order = { order; tau = Array.make (Array.length order) never }

let io_volume tree s =
  let io = ref 0 in
  Array.iteri (fun i w -> if w <> never then io := !io + tree.Tree.f.(i)) s.tau;
  !io

type check_result =
  | Feasible of { io : int; peak : int }
  | Infeasible_at of { step : int; needed : int; available : int }
  | Invalid of { step : int; node : int; reason : string }

let check tree ~memory s =
  let p = Tree.size tree in
  if Array.length s.order <> p || Array.length s.tau <> p then
    Invalid { step = -1; node = -1; reason = "wrong length" }
  else begin
    (* writes.(step) = nodes whose file is written at that step *)
    let writes = Array.make p [] in
    let bad = ref None in
    Array.iteri
      (fun i w ->
        if w <> never then
          if w < 0 || w >= p then
            bad := Some (Invalid { step = w; node = i; reason = "tau out of range" })
          else if i = tree.Tree.root then
            bad := Some (Invalid { step = w; node = i; reason = "root file written" })
          else writes.(w) <- i :: writes.(w))
      s.tau;
    match !bad with
    | Some e -> e
    | None ->
        let ready = Array.make p false in
        let executed = Array.make p false in
        let written = Array.make p false in
        ready.(tree.Tree.root) <- true;
        let mavail = ref (memory - tree.Tree.f.(tree.Tree.root)) in
        let io = ref 0 in
        let peak = ref (memory - !mavail) in
        let result = ref None in
        let step = ref 0 in
        while !result = None && !step < p do
          let k = !step in
          (* 1. writes scheduled at this step *)
          List.iter
            (fun i ->
              if !result = None then
                if not ready.(i) then
                  result :=
                    Some
                      (Invalid
                         { step = k; node = i; reason = "write of a non-resident file" })
                else if i = s.order.(k) then
                  (* constraint (6): tau(i) < sigma(i) strictly — writing a
                     file at the very step that consumes it is forbidden *)
                  result :=
                    Some
                      (Invalid { step = k; node = i; reason = "write at the execution step" })
                else if written.(i) then
                  result := Some (Invalid { step = k; node = i; reason = "double write" })
                else begin
                  written.(i) <- true;
                  mavail := !mavail + tree.Tree.f.(i);
                  io := !io + tree.Tree.f.(i)
                end)
            writes.(k);
          (* 2. execution at this step *)
          if !result = None then begin
            let i = s.order.(k) in
            if i < 0 || i >= p then
              result := Some (Invalid { step = k; node = i; reason = "node out of range" })
            else if executed.(i) then
              result := Some (Invalid { step = k; node = i; reason = "duplicate node" })
            else if not ready.(i) then
              result :=
                Some (Invalid { step = k; node = i; reason = "parent not yet executed" })
            else begin
              (* read the input file back if it was evicted *)
              if written.(i) then begin
                written.(i) <- false;
                mavail := !mavail - tree.Tree.f.(i)
              end;
              let needed = Tree.mem_req tree i in
              if needed > !mavail + tree.Tree.f.(i) then
                result :=
                  Some
                    (Infeasible_at
                       { step = k; needed; available = !mavail + tree.Tree.f.(i) })
              else begin
                let used = memory - !mavail + tree.Tree.n.(i) + Tree.sum_children_f tree i in
                if used > !peak then peak := used;
                executed.(i) <- true;
                ready.(i) <- false;
                mavail := !mavail + tree.Tree.f.(i) - Tree.sum_children_f tree i;
                Array.iter (fun j -> ready.(j) <- true) tree.Tree.children.(i);
                incr step
              end
            end
          end
        done;
        (match !result with
        | Some e -> e
        | None -> Feasible { io = !io; peak = !peak })
  end

let validate_io tree ~memory s =
  match check tree ~memory s with
  | Feasible { io; _ } -> io
  | Infeasible_at { step; needed; available } ->
      invalid_arg
        (Printf.sprintf "Io_schedule.validate_io: infeasible at step %d (%d > %d)" step
           needed available)
  | Invalid { step; node; reason } ->
      invalid_arg
        (Printf.sprintf "Io_schedule.validate_io: invalid at step %d node %d: %s" step
           node reason)
