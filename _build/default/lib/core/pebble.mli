(** The classical pebble games that MinMemory generalizes (§II-B of the
    paper).

    Sethi–Ullman (1970): evaluating an expression tree with the fewest
    registers. In pebble terms every node costs one pebble and a pebble
    moves from the children to the parent — the {e replacement} model of
    Figure 1 with unit file sizes. The minimum register count is the
    classical Sethi–Ullman labeling (for binary trees, the Strahler
    number), and the equivalence

    [min registers = Minmem.min_memory (unit replacement embedding)]

    is machine-checked in the tests — the paper's remark that MinMemory
    with trees stays polynomial where general DAGs are NP-hard, made
    executable. *)

val sethi_ullman : Tree.t -> int
(** The Sethi–Ullman label of the root for the tree's {e shape} (weights
    are ignored): leaves need 1 register; a node whose children need
    [r_1 >= r_2 >= ...] needs [max_k (r_k + k - 1)]. For binary trees
    this is the Strahler number. *)

val strahler : Tree.t -> int
(** The Strahler number of the tree's shape: leaves 1; a node with
    children of Strahler numbers [s_1 >= s_2 >= ...] has
    [max s_1 (s_2 + 1)] (and [s_1] if unary).
    For binary trees it coincides with {!sethi_ullman}. *)

val unit_replacement_tree : Tree.t -> Tree.t
(** The tree's shape embedded in the current model as a unit-size
    replacement-game instance ({!Transform.of_replacement_model} with
    every file of size 1): [Minmem.min_memory] of the result is the
    minimum number of simultaneously live pebbles. *)

val min_registers : Tree.t -> int
(** [Minmem.min_memory (unit_replacement_tree t)] — the exact pebble
    optimum, equal to {!sethi_ullman} on every tree (tested). *)
