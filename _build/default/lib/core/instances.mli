(** The paper's tree constructions, plus generic instance families used
    throughout tests and benches. *)

val harpoon : branches:int -> m:int -> eps:int -> Tree.t
(** The one-level harpoon graph of Figure 3(a): a root with [branches]
    chains below it, each chain carrying the input files
    [M/b, eps, M] (in root-to-leaf order), all execution files zero. The
    best postorder must keep the [b-1] sibling [M/b] files pending while
    it finishes one whole branch (peak [M + eps + (b-1)M/b]) whereas the
    optimal traversal first shrinks every branch to its [eps] file and
    only then descends (peak [M + b*eps]).
    @raise Invalid_argument if [branches < 1], [m < branches] or
    [eps < 0]. *)

val harpoon_nested : branches:int -> levels:int -> m:int -> eps:int -> Tree.t
(** The iterated construction of Figure 3(b) and Theorem 1, reconstructed
    from the bounds stated in the proof: every outer level chains each
    branch's [eps] node to the root of a fresh inner harpoon (with an
    [eps] input file); only the innermost level keeps the [M] leaves.
    [levels = 1] is {!harpoon}. The best postorder accumulates
    [(b-1)M/b] of pending sibling files per level
    ([M + eps + L(b-1)M/b] in total) while the optimum only accumulates
    [(b-1)eps] per level, so the ratio grows without bound with
    [levels] — Theorem 1. *)

val theorem1_ratio : branches:int -> levels:int -> m:int -> eps:int -> float
(** [PostOrder memory / optimal memory] on {!harpoon_nested}, computed
    with the real algorithms ({!Postorder_opt} and {!Liu_exact}). *)

val two_partition_gadget : int array -> Tree.t * int * int
(** The NP-completeness gadget of Figure 4 (Theorem 2), in its out-tree
    reading. Given the 2-Partition integers [a_1 .. a_n] of even sum [S]:
    [(tree, memory, io_bound)] with [memory = 2S] and [io_bound = S/2].
    The tree has [2n + 3] nodes: the root [T_in] ([f = 0]) has the [n]
    branch heads [T_i] ([f = a_i], each with one leaf child [Tout_i] of
    file [S]) and [T_big] ([f = S], with one leaf child [Tout_big] of
    file [S/2]) as children. [memory] equals the root's memory
    requirement, and the instance admits an out-of-core traversal with
    I/O volume at most [io_bound] iff some subset of the [a_i] sums to
    exactly [S/2].
    @raise Invalid_argument if the array is empty, some [a_i <= 0], or
    the sum is odd. *)

val chain : length:int -> f:int -> n:int -> Tree.t
(** A path of [length] nodes with uniform weights. *)

val star : branches:int -> f_root:int -> f_leaf:int -> n:int -> Tree.t
(** A root with [branches] leaves. *)

val caterpillar : length:int -> leaves_per_node:int -> f:int -> n:int -> Tree.t
(** A chain whose every node additionally carries [leaves_per_node]
    leaves — the worst-case family for naive traversal orders. *)

val complete_binary : levels:int -> f:int -> n:int -> Tree.t
(** Complete binary tree with [levels] levels ([2^levels - 1] nodes). *)
