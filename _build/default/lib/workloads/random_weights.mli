(** The random re-weighting of §VI-E: keep every assembly-tree structure
    of the corpus but replace the weights with node weights drawn
    uniformly from [1, N/500] and edge weights from [1, N], where N is
    the number of tree nodes. On such trees the best postorder is far
    from optimal much more often (the paper's Figure 9 / Table II). *)

val reweight : rng:Tt_util.Rng.t -> Tt_core.Tree.t -> Tt_core.Tree.t
(** Fresh random weights on the same shape; the root keeps [f = 0]
    (it has no incoming edge). *)

val corpus :
  ?variants:int -> seed:int -> Dataset.instance list -> Dataset.instance list
(** [variants] (default 3) reweighted copies of every instance — the
    paper derives "more than 3200 trees" from its 291-matrix corpus the
    same way. *)
