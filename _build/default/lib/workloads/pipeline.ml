type ordering = Natural | Rcm | Min_degree | Nested_dissection

let ordering_name = function
  | Natural -> "natural"
  | Rcm -> "rcm"
  | Min_degree -> "mindeg"
  | Nested_dissection -> "nd"

let all_orderings = [ Rcm; Min_degree; Nested_dissection ]

let permutation_of ordering pattern =
  match ordering with
  | Natural -> Tt_ordering.Permute.identity pattern.Tt_sparse.Csr.nrows
  | Rcm -> Tt_ordering.Rcm.order (Tt_ordering.Graph_adj.of_pattern pattern)
  | Min_degree -> Tt_ordering.Min_degree.order (Tt_ordering.Graph_adj.of_pattern pattern)
  | Nested_dissection ->
      Tt_ordering.Nested_dissection.order (Tt_ordering.Graph_adj.of_pattern pattern)

let assembly_tree ?(ordering = Min_degree) ?(amalgamation = 4) a =
  let pattern = Tt_sparse.Csr.symmetrize_pattern a in
  let perm = permutation_of ordering pattern in
  let b = Tt_ordering.Permute.apply pattern perm in
  let parent = Tt_etree.Elimination_tree.parents b in
  let col_counts = Tt_etree.Col_counts.counts b ~parent in
  let am = Tt_etree.Amalgamation.run ~parent ~col_counts ~limit:amalgamation in
  Tt_etree.Assembly.of_amalgamation am

let stats (asm : Tt_etree.Assembly.t) =
  let tree = asm.Tt_etree.Assembly.tree in
  let p = Tt_core.Tree.size tree in
  let height = Tt_core.Tree.height tree in
  let maxdeg =
    let best = ref 0 in
    for i = 0 to p - 1 do
      best := max !best (Array.length tree.Tt_core.Tree.children.(i))
    done;
    !best
  in
  Printf.sprintf "p=%d height=%d maxdeg=%d total_f=%d maxreq=%d" p height maxdeg
    (Tt_core.Tree.total_f tree)
    (Tt_core.Tree.max_mem_req tree)
