lib/workloads/dataset.mli: Tt_core Tt_sparse
