lib/workloads/pipeline.ml: Array Printf Tt_core Tt_etree Tt_ordering Tt_sparse
