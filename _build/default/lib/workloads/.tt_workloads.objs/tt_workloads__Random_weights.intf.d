lib/workloads/random_weights.mli: Dataset Tt_core Tt_util
