lib/workloads/random_weights.ml: Dataset List Printf Tt_core Tt_util
