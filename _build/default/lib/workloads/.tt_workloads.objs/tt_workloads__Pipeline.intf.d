lib/workloads/pipeline.mli: Tt_etree Tt_sparse
