lib/workloads/dataset.ml: List Pipeline Printf Tt_core Tt_etree Tt_ordering Tt_sparse Tt_util
