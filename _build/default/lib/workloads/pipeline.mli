(** End-to-end pipeline: sparse matrix → assembly-tree workflow, exactly
    as in §VI-B of the paper: symmetrize the pattern, apply a
    fill-reducing ordering, build the elimination tree and column counts,
    amalgamate, and attach the paper's weights. *)

type ordering = Natural | Rcm | Min_degree | Nested_dissection

val ordering_name : ordering -> string
(** Display name. *)

val all_orderings : ordering list
(** The orderings used to build the corpus (natural excluded: the paper
    orders every matrix). *)

val permutation_of : ordering -> Tt_sparse.Csr.t -> int array
(** Compute the permutation for an already-symmetrized pattern. *)

val assembly_tree :
  ?ordering:ordering -> ?amalgamation:int -> Tt_sparse.Csr.t -> Tt_etree.Assembly.t
(** [assembly_tree a] runs the whole pipeline on any square matrix
    (default [ordering = Min_degree], [amalgamation = 4]); the amount of
    relaxed amalgamation per node mirrors the paper's 1/2/4/16. *)

val stats : Tt_etree.Assembly.t -> string
(** One-line summary: nodes, height, max degree, total file volume. *)
