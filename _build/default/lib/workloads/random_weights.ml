let reweight ~rng tree =
  let p = Tt_core.Tree.size tree in
  let max_node = max 1 (p / 500) in
  let root = tree.Tt_core.Tree.root in
  Tt_core.Tree.map_weights
    ~f:(fun i -> if i = root then 0 else Tt_util.Rng.int_incl rng 1 p)
    ~n:(fun _ -> Tt_util.Rng.int_incl rng 1 max_node)
    tree

let corpus ?(variants = 3) ~seed instances =
  let rng = Tt_util.Rng.create seed in
  List.concat_map
    (fun (inst : Dataset.instance) ->
      List.init variants (fun v ->
          { Dataset.name = Printf.sprintf "%s/rw%d" inst.Dataset.name v;
            tree = reweight ~rng inst.Dataset.tree }))
    instances
