type instance = { name : string; tree : Tt_core.Tree.t }

let matrices ?(scale = 1) ~seed () =
  if scale < 1 then invalid_arg "Dataset.matrices: scale < 1";
  let rng = Tt_util.Rng.create seed in
  (* sizes grow with [scale]; at scale 1 the corpus spans n ≈ 500..3500,
     a laptop-friendly scaling-down of the paper's 2e4..2e5 (the
     algorithms only see the assembly trees, whose shapes these matrices
     already exhibit) *)
  let sq k = k * scale in
  let named = Tt_util.Dynarray_compat.create () in
  let addm name m = Tt_util.Dynarray_compat.add_last named (name, m) in
  List.iter
    (fun k -> addm (Printf.sprintf "grid2d-%d" k) (Tt_sparse.Spgen.grid2d k))
    [ sq 24; sq 34; sq 48 ];
  List.iter
    (fun k -> addm (Printf.sprintf "grid9-%d" k) (Tt_sparse.Spgen.grid2d_9pt k))
    [ sq 20; sq 30 ];
  List.iter
    (fun (kx, ky) ->
      addm (Printf.sprintf "rect-%dx%d" kx ky) (Tt_sparse.Spgen.grid2d_rect kx ky))
    [ (sq 8, sq 120); (sq 12, sq 80) ];
  List.iter
    (fun k -> addm (Printf.sprintf "grid3d-%d" k) (Tt_sparse.Spgen.grid3d k))
    [ 6 + scale; 9 + scale ];
  List.iter
    (fun (n, bw) ->
      addm
        (Printf.sprintf "band-%d-%d" n bw)
        (Tt_sparse.Spgen.banded ~rng:(Tt_util.Rng.split rng) ~n ~bandwidth:bw ~fill:0.4))
    [ (800 * scale, 8); (1600 * scale, 14) ];
  List.iter
    (fun (n, d) ->
      addm
        (Printf.sprintf "rand-%d-%.1f" n d)
        (Tt_sparse.Spgen.random_sym ~rng:(Tt_util.Rng.split rng) ~n ~nnz_per_row:d))
    [ (900 * scale, 2.5); (1500 * scale, 3.5) ];
  addm
    (Printf.sprintf "arrow-%d" (1200 * scale))
    (Tt_sparse.Spgen.block_arrow ~n:(1200 * scale) ~blocks:10 ~border:(8 * scale));
  addm
    (Printf.sprintf "plaw-%d" (1100 * scale))
    (Tt_sparse.Spgen.power_law ~rng:(Tt_util.Rng.split rng) ~n:(1100 * scale)
       ~edges_per_node:2);
  addm (Printf.sprintf "tri-%d" (1800 * scale))
    (Tt_sparse.Spgen.tridiagonal (1800 * scale));
  Tt_util.Dynarray_compat.to_list named

(* Share the expensive part (ordering, etree, column counts) across the
   amalgamation levels. *)
let instances_of_matrix ~amalgamations (mname, m) =
  let pattern = Tt_sparse.Csr.symmetrize_pattern m in
  List.concat_map
    (fun ordering ->
      let perm = Pipeline.permutation_of ordering pattern in
      let b = Tt_ordering.Permute.apply pattern perm in
      let parent = Tt_etree.Elimination_tree.parents b in
      let col_counts = Tt_etree.Col_counts.counts b ~parent in
      List.map
        (fun am ->
          let amal = Tt_etree.Amalgamation.run ~parent ~col_counts ~limit:am in
          let asm = Tt_etree.Assembly.of_amalgamation amal in
          { name =
              Printf.sprintf "%s/%s/a%d" mname (Pipeline.ordering_name ordering) am;
            tree = asm.Tt_etree.Assembly.tree })
        amalgamations)
    Pipeline.all_orderings

let corpus ?scale ?(amalgamations = [ 1; 2; 4; 16 ]) ~seed () =
  List.concat_map (instances_of_matrix ~amalgamations) (matrices ?scale ~seed ())

let small_corpus ~seed =
  let ms =
    [ ("grid2d-8", Tt_sparse.Spgen.grid2d 8);
      ("grid3d-4", Tt_sparse.Spgen.grid3d 4);
      ( "band-60",
        Tt_sparse.Spgen.banded ~rng:(Tt_util.Rng.create seed) ~n:60 ~bandwidth:5
          ~fill:0.5 );
      ( "rand-50",
        Tt_sparse.Spgen.random_sym ~rng:(Tt_util.Rng.create (seed + 1)) ~n:50
          ~nnz_per_row:2.5 )
    ]
  in
  List.concat_map (instances_of_matrix ~amalgamations:[ 1; 4 ]) ms
