(** The experiment corpus — the stand-in for the paper's 291 University
    of Florida matrices (see DESIGN.md, "Substitutions").

    A corpus is the cross product of a family of synthetic matrices
    (grids, 3D grids, banded, random, block-arrow, power-law), the
    fill-reducing orderings of {!Pipeline.all_orderings} and the paper's
    amalgamation levels 1/2/4/16. [scale] controls the matrix sizes; the
    default corpus at scale 1 has a few hundred assembly trees, built in
    seconds. Everything is deterministic given the seed. *)

type instance = {
  name : string;  (** e.g. ["grid2d-20/mindeg/a4"]. *)
  tree : Tt_core.Tree.t;  (** The weighted assembly tree. *)
}

val matrices : ?scale:int -> seed:int -> unit -> (string * Tt_sparse.Csr.t) list
(** The matrix family, sized by [scale] (≥ 1). *)

val corpus : ?scale:int -> ?amalgamations:int list -> seed:int -> unit -> instance list
(** The full assembly-tree corpus ([amalgamations] defaults to the
    paper's [1; 2; 4; 16]). *)

val small_corpus : seed:int -> instance list
(** A reduced corpus (a few dozen trees) for quick tests. *)
