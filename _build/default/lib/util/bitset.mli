(** Fixed-capacity bitsets over integers [0, n).

    Compact membership structure used by symbolic factorization (row
    marking) and by state-space searches. All single-element operations
    are O(1); iteration and population count are O(n/63). *)

type t
(** A mutable set of integers in [0, capacity). *)

val create : int -> t
(** [create n] is the empty set with capacity [n]. *)

val capacity : t -> int
(** Capacity the set was created with. *)

val mem : t -> int -> bool
(** Membership test. *)

val add : t -> int -> unit
(** Insert an element. @raise Invalid_argument if out of range. *)

val remove : t -> int -> unit
(** Delete an element (no-op if absent). *)

val clear : t -> unit
(** Empty the set. *)

val cardinal : t -> int
(** Number of elements. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over elements in increasing order. *)

val to_list : t -> int list
(** Elements in increasing order. *)

val copy : t -> t
(** Independent copy. *)

val equal : t -> t -> bool
(** Extensional equality (capacities must match). *)
