(** Persistent integer sequences with O(1) concatenation (ropes).

    Used wherever traversals are assembled from subtree pieces
    (Liu's segment combine, the Explore/MinMem cut substitutions): naive
    buffer appends are quadratic on chain-shaped trees, a rope keeps the
    whole assembly linear. *)

type t
(** An immutable sequence of integers. *)

val empty : t
(** The empty sequence. *)

val singleton : int -> t
(** One-element sequence. *)

val cat : t -> t -> t
(** O(1) concatenation. *)

val snoc : t -> int -> t
(** Append one element. *)

val length : t -> int
(** Number of elements (O(1): lengths are cached at the nodes). *)

val to_array : t -> int array
(** Flatten, left to right, in O(length); stack-safe on deep ropes. *)

val to_list : t -> int list
(** Flatten to a list. *)

val of_array : int array -> t
(** Sequence with the array's elements. *)
