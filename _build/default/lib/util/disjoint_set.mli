(** Union–find (disjoint sets) over integers [0, n) with union by rank and
    path compression. Amortized near-constant time per operation. Used by
    the elimination-tree algorithm and graph utilities. *)

type t
(** A mutable partition of [0, n) into disjoint sets. *)

val create : int -> t
(** [create n] is the partition of [0, n) into singletons. *)

val find : t -> int -> int
(** [find s x] is the canonical representative of [x]'s set. *)

val union : t -> int -> int -> int
(** [union s x y] merges the sets of [x] and [y] and returns the
    representative of the merged set. *)

val same : t -> int -> int -> bool
(** [same s x y] holds iff [x] and [y] are in the same set. *)

val count : t -> int
(** Current number of disjoint sets. *)
