(** Binary min-heap over integer elements with integer keys and
    decrease-key support.

    Elements are integers in [0, capacity); each element may be present at
    most once. Used by orderings (minimum degree) and by the state-space
    searches of the exact oracles. All operations are O(log n) except
    [mem]/[key], which are O(1). *)

type t
(** A mutable min-heap. *)

val create : int -> t
(** [create capacity] is an empty heap accepting elements in
    [0, capacity). *)

val length : t -> int
(** Number of elements currently in the heap. *)

val is_empty : t -> bool
(** Whether the heap holds no element. *)

val mem : t -> int -> bool
(** [mem h x] tells whether element [x] is currently in the heap. *)

val key : t -> int -> int
(** [key h x] is the current key of element [x].
    @raise Not_found if [x] is not in the heap. *)

val insert : t -> int -> int -> unit
(** [insert h x k] inserts element [x] with key [k].
    @raise Invalid_argument if [x] is already present or out of range. *)

val update : t -> int -> int -> unit
(** [update h x k] changes the key of [x] to [k] (up or down), inserting
    [x] if absent. *)

val min_elt : t -> int * int
(** [(x, k)] with minimal key [k]; ties broken by smaller element.
    @raise Not_found if empty. *)

val pop_min : t -> int * int
(** Remove and return the minimum binding. @raise Not_found if empty. *)

val remove : t -> int -> unit
(** [remove h x] deletes element [x] if present (no-op otherwise). *)
