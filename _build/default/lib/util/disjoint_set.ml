type t = { parent : int array; rank : int array; mutable count : int }

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; count = n }

let rec find s x =
  let p = s.parent.(x) in
  if p = x then x
  else begin
    let r = find s p in
    s.parent.(x) <- r;
    r
  end

let union s x y =
  let rx = find s x and ry = find s y in
  if rx = ry then rx
  else begin
    s.count <- s.count - 1;
    if s.rank.(rx) < s.rank.(ry) then begin
      s.parent.(rx) <- ry;
      ry
    end
    else if s.rank.(rx) > s.rank.(ry) then begin
      s.parent.(ry) <- rx;
      rx
    end
    else begin
      s.parent.(ry) <- rx;
      s.rank.(rx) <- s.rank.(rx) + 1;
      rx
    end
  end

let same s x y = find s x = find s y
let count s = s.count
