lib/util/rope.mli:
