lib/util/timer.mli:
