lib/util/dynarray_compat.mli:
