lib/util/rng.mli:
