lib/util/bitset.mli:
