lib/util/dynarray_compat.ml: Array Printf
