lib/util/rope.ml: Array
