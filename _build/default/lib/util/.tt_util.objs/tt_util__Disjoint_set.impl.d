lib/util/disjoint_set.ml: Array
