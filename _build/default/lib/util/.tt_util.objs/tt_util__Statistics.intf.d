lib/util/statistics.mli:
