(** Descriptive statistics over float samples.

    Used to compute the summary rows of the paper's Tables I and II
    (fraction of non-optimal cases, max / average / standard deviation of
    cost ratios) and benchmark timing summaries. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on the empty sample. *)

val stddev : float array -> float
(** Population standard deviation; [nan] on the empty sample. *)

val min_max : float array -> float * float
(** Smallest and largest sample. @raise Invalid_argument on empty input. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [0,1], linear interpolation between order
    statistics. @raise Invalid_argument on empty input or [q] outside
    [0,1]. *)

val median : float array -> float
(** [median xs = quantile xs 0.5]. *)

val fraction : ('a -> bool) -> 'a array -> float
(** Fraction of elements satisfying the predicate; [0.] on empty input. *)

val geometric_mean : float array -> float
(** Geometric mean of positive samples; [nan] on the empty sample. *)
