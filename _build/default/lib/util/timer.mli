(** Monotonic wall-clock timing for the runtime performance profiles
    (paper Figure 6). Uses [Unix]-free [Sys.time]-independent counters:
    the clock is [Stdlib.Sys.opaque_identity]-protected around the timed
    thunk so the compiler cannot hoist the work. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock time in seconds. *)

val time_repeat : ?min_time:float -> (unit -> 'a) -> 'a * float
(** [time_repeat f] runs [f] repeatedly until at least [min_time] seconds
    (default 0.01) have elapsed and returns the result of the last run and
    the average seconds per run. Stabilizes measurements of sub-millisecond
    algorithms on small trees. *)
