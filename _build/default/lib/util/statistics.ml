let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (acc /. float_of_int n)
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Statistics.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> ((if x < lo then x else lo), if x > hi then x else hi))
    (xs.(0), xs.(0))
    xs

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Statistics.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Statistics.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  let frac = pos -. floor pos in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let median xs = quantile xs 0.5

let fraction p xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let c = Array.fold_left (fun acc x -> if p x then acc + 1 else acc) 0 xs in
    float_of_int c /. float_of_int n
  end

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let acc = Array.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (acc /. float_of_int n)
  end
