type t = { words : int array; n : int }

let bits_per_word = Sys.int_size (* 63 on 64-bit systems *)

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make (((n + bits_per_word) - 1) / bits_per_word + 1) 0; n }

let capacity t = t.n

let check t i name =
  if i < 0 || i >= t.n then invalid_arg ("Bitset." ^ name ^ ": out of range")

let mem t i =
  i >= 0 && i < t.n
  && t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i "add";
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  if i >= 0 && i < t.n then begin
    let w = i / bits_per_word in
    t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))
  end

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  Array.iteri
    (fun wi w ->
      if w <> 0 then
        for b = 0 to bits_per_word - 1 do
          if w land (1 lsl b) <> 0 then f ((wi * bits_per_word) + b)
        done)
    t.words

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let copy t = { words = Array.copy t.words; n = t.n }

let equal a b = a.n = b.n && a.words = b.words
