type t = Empty | Leaf of int | Chunk of int array | Cat of int * t * t
(* Cat carries the total length of its subtree. *)

let empty = Empty
let singleton i = Leaf i

let length = function
  | Empty -> 0
  | Leaf _ -> 1
  | Chunk a -> Array.length a
  | Cat (n, _, _) -> n

let cat a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | _ -> Cat (length a + length b, a, b)

let snoc t i = cat t (Leaf i)

let of_array a = if Array.length a = 0 then Empty else Chunk (Array.copy a)

let to_array t =
  let out = Array.make (length t) 0 in
  let pos = ref 0 in
  (* explicit worklist for stack safety on chain-shaped ropes *)
  let work = ref [ t ] in
  while !work <> [] do
    match !work with
    | [] -> ()
    | Empty :: rest -> work := rest
    | Leaf i :: rest ->
        out.(!pos) <- i;
        incr pos;
        work := rest
    | Chunk a :: rest ->
        Array.blit a 0 out !pos (Array.length a);
        pos := !pos + Array.length a;
        work := rest
    | Cat (_, l, r) :: rest -> work := l :: r :: rest
  done;
  out

let to_list t = Array.to_list (to_array t)
