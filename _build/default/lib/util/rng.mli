(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the project (matrix generators, random
    re-weighting, property tests' auxiliary data) draws from this generator
    so that experiments are reproducible bit-for-bit from a seed, and
    independent of the OCaml stdlib [Random] state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. Useful to
    give each instance of a generated corpus its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val int_incl : t -> int -> int -> int
(** [int_incl t lo hi] is uniform in [lo, hi] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. @raise Invalid_argument on empty array. *)
