let now () = Sys.time ()

let time f =
  let t0 = now () in
  let r = Sys.opaque_identity (f ()) in
  let t1 = now () in
  (r, t1 -. t0)

let time_repeat ?(min_time = 0.01) f =
  let t0 = now () in
  let rec loop runs =
    let r = Sys.opaque_identity (f ()) in
    let elapsed = now () -. t0 in
    if elapsed >= min_time then (r, elapsed /. float_of_int runs) else loop (runs + 1)
  in
  loop 1
