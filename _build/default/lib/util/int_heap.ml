type t = {
  mutable elts : int array; (* heap slots -> element *)
  mutable keys : int array; (* heap slots -> key *)
  pos : int array; (* element -> heap slot, or -1 *)
  mutable size : int;
}

let create capacity =
  if capacity < 0 then invalid_arg "Int_heap.create";
  { elts = Array.make (max capacity 1) (-1);
    keys = Array.make (max capacity 1) 0;
    pos = Array.make (max capacity 1) (-1);
    size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let mem h x = x >= 0 && x < Array.length h.pos && h.pos.(x) >= 0

let key h x =
  if not (mem h x) then raise Not_found;
  h.keys.(h.pos.(x))

(* [less h i j] compares heap slots, key first then element for
   determinism. *)
let less h i j =
  h.keys.(i) < h.keys.(j) || (h.keys.(i) = h.keys.(j) && h.elts.(i) < h.elts.(j))

let swap h i j =
  let ei = h.elts.(i) and ej = h.elts.(j) in
  let ki = h.keys.(i) and kj = h.keys.(j) in
  h.elts.(i) <- ej;
  h.keys.(i) <- kj;
  h.elts.(j) <- ei;
  h.keys.(j) <- ki;
  h.pos.(ej) <- i;
  h.pos.(ei) <- j

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if less h i p then begin
      swap h i p;
      sift_up h p
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < h.size && less h l i then l else i in
  let m = if r < h.size && less h r m then r else m in
  if m <> i then begin
    swap h i m;
    sift_down h m
  end

let insert h x k =
  if x < 0 || x >= Array.length h.pos then invalid_arg "Int_heap.insert: out of range";
  if h.pos.(x) >= 0 then invalid_arg "Int_heap.insert: duplicate element";
  let i = h.size in
  h.elts.(i) <- x;
  h.keys.(i) <- k;
  h.pos.(x) <- i;
  h.size <- h.size + 1;
  sift_up h i

let update h x k =
  if not (mem h x) then insert h x k
  else begin
    let i = h.pos.(x) in
    let old = h.keys.(i) in
    h.keys.(i) <- k;
    if k < old then sift_up h i else sift_down h i
  end

let min_elt h =
  if h.size = 0 then raise Not_found;
  (h.elts.(0), h.keys.(0))

let remove_at h i =
  let last = h.size - 1 in
  let x = h.elts.(i) in
  h.pos.(x) <- -1;
  if i <> last then begin
    h.elts.(i) <- h.elts.(last);
    h.keys.(i) <- h.keys.(last);
    h.pos.(h.elts.(i)) <- i;
    h.size <- last;
    sift_down h i;
    sift_up h i
  end
  else h.size <- last

let pop_min h =
  let x, k = min_elt h in
  remove_at h 0;
  (x, k)

let remove h x = if mem h x then remove_at h h.pos.(x)
